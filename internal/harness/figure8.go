package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
)

// Figure8Point is one bar of Figure 8: allocation throughput for one
// concurrency level and configuration.
type Figure8Point struct {
	Enclaves   int
	SameLease  bool
	TokenBatch int
	// Allocations is the number of successful lease allocations (grants)
	// completed within the measurement window.
	Allocations int64
	// Throughput is allocations per second.
	Throughput float64
}

// Figure8Result reproduces Figure 8: SL-Local attestation performance for
// 1..N concurrent enclaves requesting the same or different leases, with
// and without 10-token batching.
type Figure8Result struct {
	Window time.Duration
	Points []Figure8Point
}

// Figure8Concurrency is the enclave counts measured (the paper sweeps
// concurrent enclaves on an 8-core machine).
var Figure8Concurrency = []int{1, 2, 4, 8}

// Figure8 runs the micro-benchmark: each concurrent "application enclave"
// hammers SL-Local with license-check requests for window long; every
// granted token counts as TokenBatch allocations served.
func Figure8(window time.Duration) (*Figure8Result, error) {
	if window <= 0 {
		window = 200 * time.Millisecond
	}
	res := &Figure8Result{Window: window}
	for _, batch := range []int{1, 10} {
		for _, same := range []bool{true, false} {
			for _, n := range Figure8Concurrency {
				p, err := figure8Point(n, same, batch, window)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, p)
			}
		}
	}
	return res, nil
}

func figure8Point(enclaves int, sameLease bool, batch int, window time.Duration) (Figure8Point, error) {
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "fig8", EPCBytes: 16 << 20})
	if err != nil {
		return Figure8Point{}, err
	}
	plat, err := attest.NewPlatform("fig8", m)
	if err != nil {
		return Figure8Point{}, err
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		return Figure8Point{}, err
	}
	// A giant pool so renewals never dominate the micro-benchmark.
	licenses := make([]string, enclaves)
	for i := range licenses {
		if sameLease {
			licenses[i] = "fig8-shared"
		} else {
			licenses[i] = fmt.Sprintf("fig8-%d", i)
		}
	}
	registered := make(map[string]bool, enclaves)
	for _, lic := range licenses {
		if !registered[lic] {
			if err := remote.RegisterLicense(lic, lease.CountBased, 1<<50); err != nil {
				return Figure8Point{}, err
			}
			registered[lic] = true
		}
	}
	svc, err := sllocal.New(sllocal.Config{TokenBatch: batch}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: remote,
	})
	if err != nil {
		return Figure8Point{}, err
	}
	if err := svc.Init(); err != nil {
		return Figure8Point{}, err
	}

	// Measure through the same metrics the live daemons export: the
	// allocation count is the delta of sllocal_tokens_issued_total over
	// the window, read via the obs snapshot-diff probe.
	reg := obs.NewRegistry()
	svc.ExposeMetrics(reg, nil)
	probe := NewMetricsProbe(reg)

	apps := make([]*sgx.Enclave, enclaves)
	for i := range apps {
		apps[i], err = m.CreateEnclave(fmt.Sprintf("app-%d", i), []byte("fig8-app"), 0)
		if err != nil {
			return Figure8Point{}, err
		}
	}

	var firstErr atomic.Value
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for i := 0; i < enclaves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, err := svc.RequestToken(apps[i], licenses[i]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return Figure8Point{}, fmt.Errorf("harness: figure8 worker: %w", err)
	}
	total := int64(probe.Get("sllocal_tokens_issued_total", map[string]string{"machine": "fig8"}))
	return Figure8Point{
		Enclaves:    enclaves,
		SameLease:   sameLease,
		TokenBatch:  batch,
		Allocations: total,
		Throughput:  float64(total) / window.Seconds(),
	}, nil
}

// BatchingSpeedup returns the mean throughput ratio batch-10 / batch-1
// across matching configurations (the paper reports ≈10×).
func (r *Figure8Result) BatchingSpeedup() float64 {
	type key struct {
		n    int
		same bool
	}
	single := make(map[key]float64)
	batched := make(map[key]float64)
	for _, p := range r.Points {
		k := key{p.Enclaves, p.SameLease}
		switch p.TokenBatch {
		case 1:
			single[k] = p.Throughput
		case 10:
			batched[k] = p.Throughput
		}
	}
	var sum float64
	var count int
	for k, s := range single {
		if b, ok := batched[k]; ok && s > 0 {
			sum += b / s
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Render prints the figure's series as a table.
func (r *Figure8Result) Render() string {
	header := []string{"Enclaves", "Lease", "Tokens/attest", "Allocations", "Alloc/s"}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		mode := "different"
		if p.SameLease {
			mode = "same"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Enclaves),
			mode,
			fmt.Sprintf("%d", p.TokenBatch),
			fmtCount(p.Allocations),
			fmtCount(int64(p.Throughput)),
		})
	}
	out := renderTable(fmt.Sprintf("Figure 8: lease-allocation throughput (%v window)", r.Window), header, rows)
	out += fmt.Sprintf("\nMean batching speedup (10 tokens/attestation): %.1f× (paper: ≈10×)\n", r.BatchingSpeedup())
	return out
}
