// Package harness drives the paper's experiments: every table and figure
// of the evaluation section (Section 7) has a driver here that runs the
// relevant components and produces the same rows or series the paper
// reports. Absolute numbers differ (the substrate is a simulator, not the
// authors' testbed) but the comparisons — who wins, by what factor, where
// the crossovers fall — reproduce the paper's shape.
package harness

import (
	"fmt"
	"math"
	"strings"
)

// renderTable renders rows as a fixed-width text table with a header.
func renderTable(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// fmtBytes renders a byte count in the units Table 5/6 use.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtCount renders large counts compactly (1.4K, 2.2M).
func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// geomean computes the geometric mean of positive values; zero/negative
// values are clamped to a small epsilon to stay defined.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v < 1e-9 {
			v = 1e-9
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
