package harness

import (
	"fmt"
	"strings"

	"repro/internal/partition"
	"repro/internal/sgx"
	"repro/internal/workloads"
)

// Table5Row is one workload's partitioning comparison (Table 5 of the
// paper): static and dynamic coverage of SecureLease vs Glamdring, EPC
// memory and fault behaviour, and the end-to-end improvement.
type Table5Row struct {
	Workload string
	// KeyFunctions are the functions SecureLease migrates (besides the AM).
	KeyFunctions []string

	// Static code migrated into the enclave, in bytes.
	GlamStaticBytes int64
	SLStaticBytes   int64
	// SLStaticVsGlam is SL static as a fraction of Glamdring's (the
	// parenthesised percentage in the paper's table).
	SLStaticVsGlam float64

	// Dynamic coverage of each partition.
	GlamDynCoverage float64
	SLDynCoverage   float64

	// EPC residency and estimated faults.
	GlamEPCBytes  int64
	GlamEPCFaults int64
	SLEPCBytes    int64
	SLEPCFaults   int64

	// PerfImprovement of SecureLease over Glamdring on the partitioning
	// alone (no attestation), as a fraction: (T_glam − T_sl) / T_glam.
	PerfImprovement float64
	// SLOverheadVsVanilla is SecureLease's slowdown over vanilla.
	SLOverheadVsVanilla float64
}

// Table5Result reproduces Table 5 across all workloads.
type Table5Result struct {
	Rows []Table5Row
	// Aggregates reported in the paper's text (Section 7.2).
	GeomeanStaticReduction float64 // paper: 67.80% less static code
	GeomeanDynCoverage     float64 // paper: 92.93%
	MeanPerfImprovement    float64 // paper: 32.62%
	MeanSLOverhead         float64 // paper: 41.82% over vanilla
}

// Table5 runs every workload, partitions it with SecureLease and
// Glamdring, and prices both partitions.
func Table5(scale int, seed int64) (*Table5Result, error) {
	est := partition.NewEstimator(sgx.DefaultCostModel())
	res := &Table5Result{}
	var staticRatios, dynCovs, perfImprs, slOverheads []float64

	for _, spec := range workloads.All() {
		prof, err := spec.Run(scale)
		if err != nil {
			return nil, fmt.Errorf("harness: running %s: %w", spec.Name, err)
		}
		sl, err := partition.SecureLease(prof.Graph, prof.Trace, partition.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("harness: partitioning %s: %w", spec.Name, err)
		}
		gl, err := partition.Glamdring(prof.Graph, 1)
		if err != nil {
			return nil, fmt.Errorf("harness: glamdring %s: %w", spec.Name, err)
		}
		slCost := est.Evaluate(prof.Graph, prof.Trace, sl.Migrated)
		glCost := est.Evaluate(prof.Graph, prof.Trace, gl.Migrated)

		row := Table5Row{
			Workload:        spec.Name,
			KeyFunctions:    spec.KeyFunctions,
			GlamStaticBytes: glCost.StaticBytes,
			SLStaticBytes:   slCost.StaticBytes,
			GlamDynCoverage: glCost.DynamicCoverage,
			SLDynCoverage:   slCost.DynamicCoverage,
			GlamEPCBytes:    glCost.EPCBytes,
			GlamEPCFaults:   glCost.EPCFaults,
			SLEPCBytes:      slCost.EPCBytes,
			SLEPCFaults:     slCost.EPCFaults,
		}
		if glCost.StaticBytes > 0 {
			row.SLStaticVsGlam = float64(slCost.StaticBytes) / float64(glCost.StaticBytes)
		}
		tGlam := 1 + glCost.PredictedOverhead
		tSL := 1 + slCost.PredictedOverhead
		row.PerfImprovement = (tGlam - tSL) / tGlam
		row.SLOverheadVsVanilla = slCost.PredictedOverhead
		res.Rows = append(res.Rows, row)

		staticRatios = append(staticRatios, row.SLStaticVsGlam)
		dynCovs = append(dynCovs, row.SLDynCoverage)
		perfImprs = append(perfImprs, row.PerfImprovement)
		slOverheads = append(slOverheads, row.SLOverheadVsVanilla)
	}

	res.GeomeanStaticReduction = 1 - geomean(staticRatios)
	res.GeomeanDynCoverage = geomean(dynCovs)
	var sumImpr, sumOver float64
	for i := range perfImprs {
		sumImpr += perfImprs[i]
		sumOver += slOverheads[i]
	}
	res.MeanPerfImprovement = sumImpr / float64(len(perfImprs))
	res.MeanSLOverhead = sumOver / float64(len(slOverheads))
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table5Result) Render() string {
	header := []string{"Workload", "Key functions", "Static Glam", "Static SL (vs Glam)",
		"DynCov Glam", "DynCov SL", "Mem Glam (faults)", "Mem SL (faults)", "Perf impr."}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload,
			strings.Join(row.KeyFunctions, ","),
			fmtBytes(row.GlamStaticBytes),
			fmt.Sprintf("%s (%.1f%%)", fmtBytes(row.SLStaticBytes), 100*row.SLStaticVsGlam),
			fmt.Sprintf("%.1f%%", 100*row.GlamDynCoverage),
			fmt.Sprintf("%.1f%%", 100*row.SLDynCoverage),
			fmt.Sprintf("%s (%s)", fmtBytes(row.GlamEPCBytes), fmtCount(row.GlamEPCFaults)),
			fmt.Sprintf("%s (%s)", fmtBytes(row.SLEPCBytes), fmtCount(row.SLEPCFaults)),
			fmt.Sprintf("%.1f%%", 100*row.PerfImprovement),
		})
	}
	out := renderTable("Table 5: partitioning comparison, SecureLease vs Glamdring", header, rows)
	out += fmt.Sprintf("\nGeomean static-code reduction: %.1f%% (paper: 67.8%%)\n", 100*r.GeomeanStaticReduction)
	out += fmt.Sprintf("Geomean dynamic coverage:      %.1f%% (paper: 92.93%%)\n", 100*r.GeomeanDynCoverage)
	out += fmt.Sprintf("Mean perf improvement:         %.1f%% (paper: 32.62%%)\n", 100*r.MeanPerfImprovement)
	out += fmt.Sprintf("Mean SL overhead vs vanilla:   %.1f%% (paper: 41.82%%)\n", 100*r.MeanSLOverhead)
	return out
}
