package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestClusterBenchSmall(t *testing.T) {
	obsDump := t.TempDir()
	res, err := ClusterBench(ClusterBenchOptions{
		Clients:           2000,
		Shards:            2,
		ClientsPerLicense: 20,
		RenewalsPerClient: 2,
		Kills:             1,
		Seed:              7,
		Dir:               t.TempDir(),
		Observe:           true,
		ObsDump:           obsDump,
	})
	if err != nil {
		t.Fatalf("ClusterBench: %v", err)
	}
	if res.Renewals != 4000 {
		t.Fatalf("Renewals = %d, want 4000 (2000 clients × 2)", res.Renewals)
	}
	var perShard int64
	var failovers int
	for _, s := range res.PerShard {
		perShard += s.Renewals
		failovers += s.Failovers
		if s.Renewals > 0 && s.P99Micros <= 0 {
			t.Fatalf("shard %d served %d renewals with p99 %v", s.Shard, s.Renewals, s.P99Micros)
		}
	}
	if perShard != res.Renewals {
		t.Fatalf("per-shard renewals %d != total %d", perShard, res.Renewals)
	}
	if failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failovers)
	}
	if !res.AuditVerified {
		t.Fatal("audit chains not verified despite kills")
	}

	// The kill must be visible through the fleet aggregator: a failover
	// timeline ending in an epoch bump, one node down, and the artifact
	// files written.
	if len(res.Timeline) == 0 {
		t.Fatal("Observe run produced no failover timeline despite a kill")
	}
	kinds := map[string]bool{}
	for _, ev := range res.Timeline {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"failover.probe_timeout", "failover.promote", "cluster.epoch_bump"} {
		if !kinds[k] {
			t.Fatalf("timeline missing %s: %+v", k, res.Timeline)
		}
	}
	var down int
	for _, n := range res.FleetNodes {
		if !n.Up {
			down++
		}
	}
	if len(res.FleetNodes) == 0 || down != 1 {
		t.Fatalf("fleet nodes = %d with %d down, want the killed leader down", len(res.FleetNodes), down)
	}
	for _, name := range []string{"metrics.prom", "metrics.json", "flight.json"} {
		b, err := os.ReadFile(filepath.Join(obsDump, name))
		if err != nil || len(b) == 0 {
			t.Fatalf("obs dump artifact %s: err=%v len=%d", name, err, len(b))
		}
	}

	render := res.Render()
	if render == "" {
		t.Fatal("empty render")
	}
	if !strings.Contains(render, "Failover timeline") {
		t.Fatalf("render does not surface the failover timeline:\n%s", render)
	}
}

// TestClusterBenchPipelined runs the cluster experiment with eight
// renewals in flight and a mid-run leader kill: the kill barrier must
// drain in-flight RPCs before failover, and conservation plus the audit
// chain must survive exactly as in lock-step mode. Event totals are still
// exact — only completion order is concurrent.
func TestClusterBenchPipelined(t *testing.T) {
	res, err := ClusterBench(ClusterBenchOptions{
		Clients:           1000,
		Shards:            2,
		ClientsPerLicense: 10,
		RenewalsPerClient: 2,
		Kills:             1,
		Pipeline:          8,
		Seed:              13,
		Dir:               t.TempDir(),
	})
	if err != nil {
		t.Fatalf("ClusterBench: %v", err)
	}
	if res.Renewals != 2000 {
		t.Fatalf("Renewals = %d, want 2000 (1000 clients × 2)", res.Renewals)
	}
	var perShard int64
	var failovers int
	for _, s := range res.PerShard {
		perShard += s.Renewals
		failovers += s.Failovers
	}
	if perShard != res.Renewals {
		t.Fatalf("per-shard renewals %d != total %d", perShard, res.Renewals)
	}
	if failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failovers)
	}
	if !res.AuditVerified {
		t.Fatal("audit chains not verified despite kills")
	}
}

func TestClusterBenchDeterministicCounts(t *testing.T) {
	run := func() *ClusterBenchResult {
		res, err := ClusterBench(ClusterBenchOptions{
			Clients:           500,
			Shards:            2,
			ClientsPerLicense: 10,
			RenewalsPerClient: 2,
			Seed:              21,
			Dir:               t.TempDir(),
		})
		if err != nil {
			t.Fatalf("ClusterBench: %v", err)
		}
		return res
	}
	a, b := run(), run()
	// Latency and duration vary; the simulated behavior must not.
	if a.Renewals != b.Renewals || a.Denials != b.Denials || a.Consumes != b.Consumes {
		t.Fatalf("same seed, different behavior: %+v vs %+v", a, b)
	}
	for s := range a.PerShard {
		if a.PerShard[s].Renewals != b.PerShard[s].Renewals || a.PerShard[s].Denials != b.PerShard[s].Denials {
			t.Fatalf("shard %d diverged across same-seed runs: %+v vs %+v", s, a.PerShard[s], b.PerShard[s])
		}
	}
}

func TestFleetSeededDeterminism(t *testing.T) {
	clients := []FleetClient{
		{Name: "stable", Health: 0.99, Reliability: 0.95, Weight: 1},
		{Name: "flaky-net", Health: 0.95, Reliability: 0.6, Weight: 1},
		{Name: "crashy", Health: 0.5, Reliability: 0.9, Weight: 1},
	}
	run := func(seed int64) *FleetResult {
		res, err := Fleet(clients, 5, 50_000, seed)
		if err != nil {
			t.Fatalf("Fleet: %v", err)
		}
		return res
	}
	a, b := run(11), run(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different FleetResult:\n %+v\n %+v", a, b)
	}
}
