package harness

import (
	"reflect"
	"testing"
)

func TestClusterBenchSmall(t *testing.T) {
	res, err := ClusterBench(ClusterBenchOptions{
		Clients:           2000,
		Shards:            2,
		ClientsPerLicense: 20,
		RenewalsPerClient: 2,
		Kills:             1,
		Seed:              7,
		Dir:               t.TempDir(),
	})
	if err != nil {
		t.Fatalf("ClusterBench: %v", err)
	}
	if res.Renewals != 4000 {
		t.Fatalf("Renewals = %d, want 4000 (2000 clients × 2)", res.Renewals)
	}
	var perShard int64
	var failovers int
	for _, s := range res.PerShard {
		perShard += s.Renewals
		failovers += s.Failovers
		if s.Renewals > 0 && s.P99Micros <= 0 {
			t.Fatalf("shard %d served %d renewals with p99 %v", s.Shard, s.Renewals, s.P99Micros)
		}
	}
	if perShard != res.Renewals {
		t.Fatalf("per-shard renewals %d != total %d", perShard, res.Renewals)
	}
	if failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failovers)
	}
	if !res.AuditVerified {
		t.Fatal("audit chains not verified despite kills")
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestClusterBenchDeterministicCounts(t *testing.T) {
	run := func() *ClusterBenchResult {
		res, err := ClusterBench(ClusterBenchOptions{
			Clients:           500,
			Shards:            2,
			ClientsPerLicense: 10,
			RenewalsPerClient: 2,
			Seed:              21,
			Dir:               t.TempDir(),
		})
		if err != nil {
			t.Fatalf("ClusterBench: %v", err)
		}
		return res
	}
	a, b := run(), run()
	// Latency and duration vary; the simulated behavior must not.
	if a.Renewals != b.Renewals || a.Denials != b.Denials || a.Consumes != b.Consumes {
		t.Fatalf("same seed, different behavior: %+v vs %+v", a, b)
	}
	for s := range a.PerShard {
		if a.PerShard[s].Renewals != b.PerShard[s].Renewals || a.PerShard[s].Denials != b.PerShard[s].Denials {
			t.Fatalf("shard %d diverged across same-seed runs: %+v vs %+v", s, a.PerShard[s], b.PerShard[s])
		}
	}
}

func TestFleetSeededDeterminism(t *testing.T) {
	clients := []FleetClient{
		{Name: "stable", Health: 0.99, Reliability: 0.95, Weight: 1},
		{Name: "flaky-net", Health: 0.95, Reliability: 0.6, Weight: 1},
		{Name: "crashy", Health: 0.5, Reliability: 0.9, Weight: 1},
	}
	run := func(seed int64) *FleetResult {
		res, err := Fleet(clients, 5, 50_000, seed)
		if err != nil {
			t.Fatalf("Fleet: %v", err)
		}
		return res
	}
	a, b := run(11), run(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different FleetResult:\n %+v\n %+v", a, b)
	}
}
