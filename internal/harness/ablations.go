package harness

import (
	"fmt"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/partition"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
	"repro/internal/workloads"
)

// AblationPartitionRow is one workload × partitioner-variant cell of the
// partitioning ablation: it isolates the contribution of the two design
// refinements the SecureLease partitioner makes over a bare
// "k-means + greedy" (cluster coarsening and data-structure trimming).
type AblationPartitionRow struct {
	Workload string
	Variant  string
	// Migrated is the enclave function count.
	Migrated int
	// Overhead is the predicted slowdown over vanilla.
	Overhead float64
	// EPCFaults per the estimator.
	EPCFaults int64
	// KeyInside reports whether at least one key function migrated (the
	// security requirement).
	KeyInside bool
}

// AblationPartitionResult collects the partitioning ablation.
type AblationPartitionResult struct {
	Rows []AblationPartitionRow
}

// AblationPartition runs SecureLease's partitioner with each refinement
// disabled in turn, across all workloads.
func AblationPartition(scale int, seed int64) (*AblationPartitionResult, error) {
	variants := []struct {
		name string
		opts partition.Options
	}{
		{"full", partition.Options{Seed: seed}},
		{"no-merge", partition.Options{Seed: seed, DisableClusterMerge: true}},
		{"no-trim", partition.Options{Seed: seed, DisableTrim: true}},
		{"no-merge-no-trim", partition.Options{Seed: seed, DisableClusterMerge: true, DisableTrim: true}},
	}
	est := partition.NewEstimator(sgx.DefaultCostModel())
	res := &AblationPartitionResult{}
	for _, spec := range workloads.All() {
		prof, err := spec.Run(scale)
		if err != nil {
			return nil, fmt.Errorf("harness: running %s: %w", spec.Name, err)
		}
		for _, v := range variants {
			p, err := partition.SecureLease(prof.Graph, prof.Trace, v.opts)
			if err != nil {
				return nil, fmt.Errorf("harness: %s/%s: %w", spec.Name, v.name, err)
			}
			cost := est.Evaluate(prof.Graph, prof.Trace, p.Migrated)
			keyInside := false
			for f := range p.Migrated {
				if n := prof.Graph.Node(f); n != nil && n.KeyFunction {
					keyInside = true
					break
				}
			}
			res.Rows = append(res.Rows, AblationPartitionRow{
				Workload:  spec.Name,
				Variant:   v.name,
				Migrated:  len(p.MigratedList()),
				Overhead:  cost.PredictedOverhead,
				EPCFaults: cost.EPCFaults,
				KeyInside: keyInside,
			})
		}
	}
	return res, nil
}

// MeanOverhead returns the mean predicted overhead of one variant.
func (r *AblationPartitionResult) MeanOverhead(variant string) float64 {
	var sum float64
	var n int
	for _, row := range r.Rows {
		if row.Variant == variant {
			sum += row.Overhead
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the ablation as a table.
func (r *AblationPartitionResult) Render() string {
	header := []string{"Workload", "Variant", "Migrated fns", "Overhead", "EPC faults", "Key inside"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, row.Variant,
			fmt.Sprintf("%d", row.Migrated),
			fmtOverhead(row.Overhead),
			fmtCount(row.EPCFaults),
			fmt.Sprintf("%v", row.KeyInside),
		})
	}
	out := renderTable("Ablation: partitioner refinements (cluster merge, data trim)", header, rows)
	out += fmt.Sprintf("\nMean overhead — full: %s, no-merge: %s, no-trim: %s, neither: %s\n",
		fmtOverhead(r.MeanOverhead("full")), fmtOverhead(r.MeanOverhead("no-merge")),
		fmtOverhead(r.MeanOverhead("no-trim")), fmtOverhead(r.MeanOverhead("no-merge-no-trim")))
	return out
}

// AblationBatchRow is one token-batch-size point: the attestation count
// and lease-path virtual cycles for a fixed burst of license checks.
type AblationBatchRow struct {
	Batch        int
	LocalAttests int64
	LeaseCycles  int64
}

// AblationBatchResult sweeps the tokens-per-attestation parameter
// (Section 7.3 fixes it at 10; this shows the curve).
type AblationBatchResult struct {
	Checks int
	Rows   []AblationBatchRow
}

// AblationBatch runs a fixed burst of checks at several batch sizes.
func AblationBatch(checks int) (*AblationBatchResult, error) {
	if checks <= 0 {
		checks = 2000
	}
	res := &AblationBatchResult{Checks: checks}
	for _, batch := range []int{1, 2, 5, 10, 20, 50} {
		m, err := sgx.NewMachine(sgx.MachineConfig{Name: "ablate", EPCBytes: 8 << 20})
		if err != nil {
			return nil, err
		}
		plat, err := attest.NewPlatform("ablate", m)
		if err != nil {
			return nil, err
		}
		remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
		if err != nil {
			return nil, err
		}
		if err := remote.RegisterLicense("lic", lease.CountBased, int64(checks)*10); err != nil {
			return nil, err
		}
		svc, err := sllocal.New(sllocal.Config{TokenBatch: batch}, sllocal.Deps{
			Machine: m, Platform: plat, Remote: remote,
		})
		if err != nil {
			return nil, err
		}
		if err := svc.Init(); err != nil {
			return nil, err
		}
		app, err := m.CreateEnclave("app", []byte("app"), 0)
		if err != nil {
			return nil, err
		}
		start := m.Clock().Now()
		rasBefore := m.Stats().RemoteAttests
		issued := 0
		for issued < checks {
			tok, err := svc.RequestToken(app, "lic")
			if err != nil {
				return nil, fmt.Errorf("harness: batch %d after %d checks: %w", batch, issued, err)
			}
			for tok.Use() && issued < checks {
				issued++
			}
		}
		cycles := m.Clock().Since(start)
		// Exclude renewal RAs so the row isolates the local path.
		ras := m.Stats().RemoteAttests - rasBefore
		cycles -= ras * m.Model().DurationToCycles(m.Model().RemoteAttest)
		res.Rows = append(res.Rows, AblationBatchRow{
			Batch:        batch,
			LocalAttests: svc.Stats().LocalAttests,
			LeaseCycles:  cycles,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationBatchResult) Render() string {
	header := []string{"Tokens/attest", "Local attests", "Local lease cycles", "Cycles/check"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Batch),
			fmtCount(row.LocalAttests),
			fmtCount(row.LeaseCycles),
			fmt.Sprintf("%.0f", float64(row.LeaseCycles)/float64(r.Checks)),
		})
	}
	return renderTable(fmt.Sprintf("Ablation: token batch size (%d checks)", r.Checks), header, rows)
}

// AblationDRow is one scale-down-factor point of the D sweep: how the
// sub-lease divisor trades renewal round trips against crash exposure.
type AblationDRow struct {
	D float64
	// Renewals needed to serve the burst.
	Renewals int64
	// MaxOutstanding is the largest sub-GCL held at once — the crash
	// exposure the pessimistic policy would forfeit.
	MaxOutstanding int64
}

// AblationDResult sweeps D (the paper uses 4, i.e. g = 25% of G).
type AblationDResult struct {
	Checks int
	Rows   []AblationDRow
}

// AblationD serves a fixed burst under different D values.
func AblationD(checks int) (*AblationDResult, error) {
	if checks <= 0 {
		checks = 4000
	}
	res := &AblationDResult{Checks: checks}
	for _, d := range []float64{1, 2, 4, 8, 16} {
		m, err := sgx.NewMachine(sgx.MachineConfig{Name: "ablate-d", EPCBytes: 8 << 20})
		if err != nil {
			return nil, err
		}
		plat, err := attest.NewPlatform("ablate-d", m)
		if err != nil {
			return nil, err
		}
		cfg := slremote.DefaultConfig()
		cfg.D = d
		remote, err := slremote.NewServer(cfg, nil)
		if err != nil {
			return nil, err
		}
		if err := remote.RegisterLicense("lic", lease.CountBased, int64(checks)*2); err != nil {
			return nil, err
		}
		svc, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
			Machine: m, Platform: plat, Remote: remote,
		})
		if err != nil {
			return nil, err
		}
		if err := svc.Init(); err != nil {
			return nil, err
		}
		app, err := m.CreateEnclave("app", []byte("app"), 0)
		if err != nil {
			return nil, err
		}
		var maxOut int64
		issued := 0
		for issued < checks {
			tok, err := svc.RequestToken(app, "lic")
			if err != nil {
				return nil, fmt.Errorf("harness: D=%v after %d checks: %w", d, issued, err)
			}
			if out := remote.Outstanding(svc.SLID(), "lic"); out > maxOut {
				maxOut = out
			}
			for tok.Use() && issued < checks {
				issued++
			}
		}
		res.Rows = append(res.Rows, AblationDRow{
			D:              d,
			Renewals:       svc.Stats().Renewals,
			MaxOutstanding: maxOut,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationDResult) Render() string {
	header := []string{"D", "Renewals", "Max outstanding (crash exposure)"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", row.D),
			fmt.Sprintf("%d", row.Renewals),
			fmtCount(row.MaxOutstanding),
		})
	}
	out := renderTable(fmt.Sprintf("Ablation: scale-down factor D (%d checks; paper uses D=4)", r.Checks), header, rows)
	out += "\nSmaller D = fewer renewals but larger crash exposure; D=4 is the paper's balance.\n"
	return out
}

// ScalableSGXRow compares a partition's fault behaviour under the classic
// 92 MB EPC and the 512 GB scalable-SGX EPC (Section 7.5).
type ScalableSGXRow struct {
	Workload         string
	Scheme           string
	FaultsClassic    int64
	FaultsScalable   int64
	OverheadClassic  float64
	OverheadScalable float64
}

// ScalableSGXResult is the Section 7.5 what-if.
type ScalableSGXResult struct {
	Rows []ScalableSGXRow
}

// ScalableSGX evaluates both partitions under both EPC sizes.
func ScalableSGX(scale int, seed int64) (*ScalableSGXResult, error) {
	res := &ScalableSGXResult{}
	classic := partition.NewEstimator(sgx.DefaultCostModel())
	scalable := partition.NewEstimator(sgx.DefaultCostModel())
	scalable.SetEPCBudget(512 << 30)
	for _, spec := range workloads.All() {
		prof, err := spec.Run(scale)
		if err != nil {
			return nil, err
		}
		sl, err := partition.SecureLease(prof.Graph, prof.Trace, partition.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		gl, err := partition.Glamdring(prof.Graph, 1)
		if err != nil {
			return nil, err
		}
		for _, s := range []struct {
			name string
			p    *partition.Partition
		}{{"securelease", sl}, {"glamdring", gl}} {
			c := classic.Evaluate(prof.Graph, prof.Trace, s.p.Migrated)
			sc := scalable.Evaluate(prof.Graph, prof.Trace, s.p.Migrated)
			res.Rows = append(res.Rows, ScalableSGXRow{
				Workload:         spec.Name,
				Scheme:           s.name,
				FaultsClassic:    c.EPCFaults,
				FaultsScalable:   sc.EPCFaults,
				OverheadClassic:  c.PredictedOverhead,
				OverheadScalable: sc.PredictedOverhead,
			})
		}
	}
	return res, nil
}

// Render prints the what-if.
func (r *ScalableSGXResult) Render() string {
	header := []string{"Workload", "Scheme", "Faults 92MB", "Faults 512GB", "Overhead 92MB", "Overhead 512GB"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, row.Scheme,
			fmtCount(row.FaultsClassic), fmtCount(row.FaultsScalable),
			fmtOverhead(row.OverheadClassic), fmtOverhead(row.OverheadScalable),
		})
	}
	out := renderTable("Section 7.5 what-if: classic vs scalable SGX EPC", header, rows)
	out += "\nScalable SGX removes the fault gap but not the isolation/TCB argument\nfor partitioning (and SecureLease's lease machinery is EPC-agnostic).\n"
	return out
}
