package harness

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/workloads"
)

// Figure7 renders the call-graph cluster visualization of the paper's
// Figure 7 for a workload: the application's module clusters with the
// functions each scheme migrates filled in. It returns two DOT documents
// (Glamdring and SecureLease) plus a short comparison summary.
func Figure7(workload string, scale int, seed int64) (glamDOT, slDOT, summary string, err error) {
	spec, err := workloads.Get(workload)
	if err != nil {
		return "", "", "", err
	}
	prof, err := spec.Run(scale)
	if err != nil {
		return "", "", "", fmt.Errorf("harness: running %s: %w", workload, err)
	}
	gl, err := partition.Glamdring(prof.Graph, 1)
	if err != nil {
		return "", "", "", err
	}
	sl, err := partition.SecureLease(prof.Graph, prof.Trace, partition.Options{Seed: seed})
	if err != nil {
		return "", "", "", err
	}
	glamDOT = prof.Graph.DOT(workload+" (Glamdring)", gl.Migrated)
	slDOT = prof.Graph.DOT(workload+" (SecureLease)", sl.Migrated)
	summary = fmt.Sprintf(
		"Figure 7 (%s): Glamdring migrates %d/%d functions; SecureLease migrates %d/%d (whole clusters only)",
		workload, len(gl.MigratedList()), prof.Graph.Len(), len(sl.MigratedList()), prof.Graph.Len())
	return glamDOT, slDOT, summary, nil
}
