package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/netsim"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
)

// FleetClient is the simulated profile of one client machine in the fleet
// experiment.
type FleetClient struct {
	Name        string
	Health      float64 // crash probability is 1 − Health per epoch
	Reliability float64 // network delivery probability
	Weight      float64 // demand share α
}

// FleetResult summarizes a multi-client lease-distribution run — the
// scenario Algorithm 1 is designed for (Section 5.3): a multi-party group
// sharing one license pool, with flaky networks and crashing nodes.
type FleetResult struct {
	Clients      int
	Epochs       int
	TotalGCL     int64
	Tau          float64
	ChecksServed int64
	Crashes      int64
	UnitsLost    int64
	UnitsGranted int64
	Denials      int64
}

// Fleet runs `epochs` rounds over the given clients sharing one license.
// Each epoch every live client serves a burst of license checks; clients
// crash with probability (1 − health) per epoch and restart the next one
// (forfeiting outstanding units, per the pessimistic policy). The result
// witnesses the invariants Algorithm 1 promises: grants never exceed the
// pool, and realized losses stay in the neighbourhood of τ per epoch.
func Fleet(clients []FleetClient, epochs int, totalGCL int64, seed int64) (*FleetResult, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("harness: empty fleet")
	}
	if epochs <= 0 {
		epochs = 5
	}
	rng := rand.New(rand.NewSource(seed))

	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		return nil, err
	}
	const license = "lic-fleet"
	if err := remote.RegisterLicense(license, lease.CountBased, totalGCL); err != nil {
		return nil, err
	}

	type node struct {
		profile FleetClient
		machine *sgx.Machine
		plat    *attest.Platform
		link    *netsim.Link
		state   *sllocal.UntrustedState
		svc     *sllocal.Service
		app     *sgx.Enclave
		down    bool
	}
	nodes := make([]*node, len(clients))
	startNode := func(n *node) error {
		svc, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
			Machine: n.machine, Platform: n.plat, Remote: remote, Link: n.link, State: n.state,
		})
		if err != nil {
			return err
		}
		if err := svc.Init(); err != nil {
			return err
		}
		n.svc = svc
		n.down = false
		return remote.SetClientProfile(svc.SLID(), n.profile.Health, n.profile.Reliability, n.profile.Weight)
	}
	for i, c := range clients {
		m, err := sgx.NewMachine(sgx.MachineConfig{Name: c.Name, EPCBytes: 8 << 20})
		if err != nil {
			return nil, err
		}
		plat, err := attest.NewPlatform(c.Name, m)
		if err != nil {
			return nil, err
		}
		n := &node{
			profile: c,
			machine: m,
			plat:    plat,
			link:    netsim.NewLink(netsim.LinkConfig{Reliability: c.Reliability, Seed: seed + int64(i)}),
			state:   &sllocal.UntrustedState{},
		}
		if err := startNode(n); err != nil {
			return nil, fmt.Errorf("harness: starting %s: %w", c.Name, err)
		}
		n.app, err = m.CreateEnclave("fleet-app", []byte("fleet-app"), 0)
		if err != nil {
			return nil, err
		}
		nodes[i] = n
	}

	res := &FleetResult{
		Clients:  len(clients),
		Epochs:   epochs,
		TotalGCL: totalGCL,
	}
	lic, err := remote.License(license)
	if err != nil {
		return nil, err
	}
	res.Tau = lic.Tau

	burst := int(totalGCL) / (len(clients) * epochs * 4)
	if burst < 10 {
		burst = 10
	}
	for epoch := 0; epoch < epochs; epoch++ {
		for _, n := range nodes {
			if n.down {
				// Restart: SL-Remote infers the crash at init and
				// forfeits whatever the node held.
				if err := startNode(n); err != nil {
					return nil, fmt.Errorf("harness: restarting %s: %w", n.profile.Name, err)
				}
			}
			served := 0
			for served < burst {
				tok, err := n.svc.RequestToken(n.app, license)
				if err != nil {
					res.Denials++
					break
				}
				for tok.Use() && served < burst {
					served++
					res.ChecksServed++
				}
			}
			// Crash roll for this epoch.
			if rng.Float64() > n.profile.Health {
				n.svc.Crash()
				n.down = true
				res.Crashes++
			}
		}
	}

	lic, err = remote.License(license)
	if err != nil {
		return nil, err
	}
	res.UnitsLost = lic.Lost
	res.UnitsGranted = totalGCL - lic.Remaining
	return res, nil
}

// Render prints the fleet summary.
func (r *FleetResult) Render() string {
	header := []string{"Clients", "Epochs", "Pool", "Granted", "Served", "Crashes", "Lost", "τ", "Denials"}
	rows := [][]string{{
		fmt.Sprintf("%d", r.Clients),
		fmt.Sprintf("%d", r.Epochs),
		fmtCount(r.TotalGCL),
		fmtCount(r.UnitsGranted),
		fmtCount(r.ChecksServed),
		fmt.Sprintf("%d", r.Crashes),
		fmtCount(r.UnitsLost),
		fmtCount(int64(r.Tau)),
		fmt.Sprintf("%d", r.Denials),
	}}
	out := renderTable("Fleet: shared-license distribution under crashes (Section 5.3)", header, rows)
	out += "\nInvariants: granted ≤ pool; served + lost ≤ granted; losses bounded by\nthe τ-scaled sub-leases Algorithm 1 hands out.\n"
	return out
}
