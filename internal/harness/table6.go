package harness

import (
	"fmt"

	"repro/internal/lease"
	"repro/internal/leasetree"
)

// Table6LeaseCounts are the lease populations the paper measures.
var Table6LeaseCounts = []int{1_000, 5_000, 10_000, 50_000}

// Table6Budget is the eviction budget of the paper's SL-Local
// configuration (the ~1.6 MB footprint plateau of Table 6).
const Table6Budget = 1664 << 10

// Table6Row is one configuration's memory footprints.
type Table6Row struct {
	Config string
	// Footprint maps lease count → trusted-memory bytes.
	Footprint map[int]int64
}

// Table6Result reproduces Table 6: SL-Local memory with and without
// eviction, and (extension, Section 5.2.3) the array and hash baselines.
type Table6Result struct {
	Rows []Table6Row
}

// Table6 populates trees (with and without eviction budgets) and the
// comparison stores at each lease count and measures footprints.
func Table6() (*Table6Result, error) {
	type cfg struct {
		name string
		mk   func() leasetree.Store
	}
	cfgs := []cfg{
		{"No-Evict", func() leasetree.Store { return leasetree.NewTree() }},
		{"SecureLease", func() leasetree.Store {
			t := leasetree.NewTree()
			t.SetBudget(Table6Budget)
			return t
		}},
		{"Array", func() leasetree.Store { return leasetree.NewArrayStore() }},
		{"Hash (Murmur)", func() leasetree.Store { return leasetree.NewHashStore(leasetree.HashMurmur) }},
	}
	res := &Table6Result{}
	for _, c := range cfgs {
		row := Table6Row{Config: c.name, Footprint: make(map[int]int64, len(Table6LeaseCounts))}
		for _, n := range Table6LeaseCounts {
			store := c.mk()
			alloc := leasetree.NewIDAllocator()
			block := alloc.NextBlock()
			for i := 0; i < n; i++ {
				if block.Remaining() == 0 {
					block = alloc.NextBlock()
				}
				id, _ := block.Next()
				if err := store.Put(lease.Record{ID: id, GCL: lease.NewCountGCL(10), Owner: "t6"}); err != nil {
					return nil, fmt.Errorf("harness: table6 %s: %w", c.name, err)
				}
			}
			row.Footprint[n] = store.Footprint()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// EvictionFlattens reports the paper's claim: with eviction the footprint
// stays (approximately) flat while No-Evict grows linearly.
func (r *Table6Result) EvictionFlattens() bool {
	var evict, noEvict map[int]int64
	for _, row := range r.Rows {
		switch row.Config {
		case "SecureLease":
			evict = row.Footprint
		case "No-Evict":
			noEvict = row.Footprint
		}
	}
	if evict == nil || noEvict == nil {
		return false
	}
	nMax := Table6LeaseCounts[len(Table6LeaseCounts)-1]
	nMin := Table6LeaseCounts[0]
	// No-Evict grows by >10× from 1K to 50K; SecureLease stays within the
	// budget at 50K.
	return noEvict[nMax] > 10*noEvict[nMin] && evict[nMax] <= Table6Budget
}

// Render prints the table in the paper's layout.
func (r *Table6Result) Render() string {
	header := []string{"# Total leases"}
	for _, n := range Table6LeaseCounts {
		header = append(header, fmtCount(int64(n)))
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Config}
		for _, n := range Table6LeaseCounts {
			cells = append(cells, fmtBytes(row.Footprint[n]))
		}
		rows = append(rows, cells)
	}
	return renderTable("Table 6: SL-Local trusted-memory usage with and without eviction", header, rows)
}
