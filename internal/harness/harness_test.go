package harness

import (
	"strings"
	"testing"
	"time"
)

func TestTable1ShapeAndRender(t *testing.T) {
	res, err := Table1(3)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.TreeFasterThanHashes() {
		t.Log(res.Render())
		t.Fatal("tree is not the fastest store at 5000 ops (paper's Table 1 shape)")
	}
	// SHA-256 must be the slowest at the largest op count.
	var tree, mur, sha time.Duration
	for _, row := range res.Rows {
		switch row.Technique {
		case "Tree":
			tree = row.Latency[5000]
		case "Murmur Hash":
			mur = row.Latency[5000]
		case "SHA-256":
			sha = row.Latency[5000]
		}
	}
	if !(tree < mur && mur < sha) {
		t.Fatalf("ordering tree(%v) < murmur(%v) < sha(%v) violated", tree, mur, sha)
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "Tree", "Murmur Hash", "SHA-256", "5000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable5ShapeAndAggregates(t *testing.T) {
	res, err := Table5(1, 7)
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 workloads", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SLEPCFaults != 0 {
			t.Errorf("%s: SecureLease faults = %d, want 0", row.Workload, row.SLEPCFaults)
		}
		if row.SLEPCBytes > 92<<20 {
			t.Errorf("%s: SecureLease EPC %d exceeds the EPC", row.Workload, row.SLEPCBytes)
		}
		// Every workload improves or sits at near-parity (the paper's
		// smallest gap is blockchain at 3.3%; our blockchain lands within
		// noise of zero because Glamdring's taint swallows main).
		if row.PerfImprovement < -0.02 {
			t.Errorf("%s: negative improvement %.3f", row.Workload, row.PerfImprovement)
		}
		if row.SLDynCoverage <= 0 || row.SLDynCoverage > 1 {
			t.Errorf("%s: dynamic coverage %.3f out of range", row.Workload, row.SLDynCoverage)
		}
	}
	// Paper-shaped aggregates: sizeable static reduction, high dynamic
	// coverage, positive mean improvement.
	if res.GeomeanStaticReduction < 0.2 {
		t.Errorf("static reduction %.3f too small for the paper's shape", res.GeomeanStaticReduction)
	}
	if res.GeomeanDynCoverage < 0.5 {
		t.Errorf("dynamic coverage %.3f too small", res.GeomeanDynCoverage)
	}
	if res.MeanPerfImprovement <= 0 {
		t.Errorf("mean improvement %.3f not positive", res.MeanPerfImprovement)
	}
	out := res.Render()
	for _, want := range []string{"Table 5", "bfs", "matmult", "paper: 67.8%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestTable6ShapeAndRender(t *testing.T) {
	res, err := Table6()
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	if !res.EvictionFlattens() {
		t.Log(res.Render())
		t.Fatal("eviction does not flatten the footprint (paper's Table 6 shape)")
	}
	// The tree under budget must beat array and hash at 50K leases.
	foot := make(map[string]int64)
	for _, row := range res.Rows {
		foot[row.Config] = row.Footprint[50_000]
	}
	if foot["SecureLease"] >= foot["Array"] || foot["SecureLease"] >= foot["Hash (Murmur)"] {
		t.Fatalf("SecureLease %d not smaller than array %d / hash %d at 50K",
			foot["SecureLease"], foot["Array"], foot["Hash (Murmur)"])
	}
	// Section 5.2.3's "up to 94%" memory win: require ≥80% vs the hash.
	if float64(foot["SecureLease"]) > 0.2*float64(foot["Hash (Murmur)"]) {
		t.Fatalf("memory win too small: %d vs %d", foot["SecureLease"], foot["Hash (Murmur)"])
	}
	if !strings.Contains(res.Render(), "Table 6") {
		t.Fatal("render missing title")
	}
}

func TestFigure7DOT(t *testing.T) {
	glam, sl, summary, err := Figure7("openssl", 1, 7)
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	for _, dot := range []string{glam, sl} {
		if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "openssl.decrypt") {
			t.Fatalf("malformed DOT:\n%s", dot[:200])
		}
	}
	if !strings.Contains(summary, "Figure 7") {
		t.Fatalf("summary = %q", summary)
	}
	if _, _, _, err := Figure7("nope", 1, 7); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFigure8BatchingSpeedup(t *testing.T) {
	res, err := Figure8(60 * time.Millisecond)
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if len(res.Points) != len(Figure8Concurrency)*4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Allocations <= 0 {
			t.Fatalf("zero allocations at %+v", p)
		}
	}
	// Batching must deliver a substantial speedup (paper: ≈10×; allow ≥3×
	// under simulation noise in tiny windows).
	if sp := res.BatchingSpeedup(); sp < 3 {
		t.Log(res.Render())
		t.Fatalf("batching speedup %.2f×, want ≥3×", sp)
	}
	if !strings.Contains(res.Render(), "Figure 8") {
		t.Fatal("render missing title")
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9(1, 7)
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The paper's ordering: SecureLease ≤ Glamdring < F-LaaS, with
		// blockchain at near-parity (5% slack).
		if row.SLOverhead > 1.05*row.GlamOverhead {
			t.Errorf("%s: SL %.3f > Glamdring %.3f", row.Workload, row.SLOverhead, row.GlamOverhead)
		}
		if row.SLOverhead >= row.FLaaSOverhead {
			t.Errorf("%s: SL %.3f not better than F-LaaS %.3f", row.Workload, row.SLOverhead, row.FLaaSOverhead)
		}
		if row.RemoteAttestsSL >= row.RemoteAttestsFL && row.Checks > 1 {
			t.Errorf("%s: RAs %d/%d — no reduction", row.Workload, row.RemoteAttestsSL, row.RemoteAttestsFL)
		}
	}
	// Headlines: big win over F-LaaS, positive win over Glamdring, big RA
	// reduction.
	if res.MeanImprovementOverFLaaS < 0.5 {
		t.Errorf("improvement over F-LaaS %.3f, want ≥0.5 (paper 0.6634)", res.MeanImprovementOverFLaaS)
	}
	if res.MeanImprovementOverGlam <= 0 {
		t.Errorf("improvement over Glamdring %.3f, want >0 (paper 0.1955)", res.MeanImprovementOverGlam)
	}
	if res.RAReduction < 0.9 {
		t.Errorf("RA reduction %.3f, want ≥0.9 (paper ≈0.99)", res.RAReduction)
	}
	// At least one FaaS workload must show an extreme F-LaaS overhead
	// (the paper's 2272× bar).
	extreme := false
	for _, row := range res.Rows {
		if row.FLaaSOverhead > 100 {
			extreme = true
		}
	}
	if !extreme {
		t.Error("no workload shows the paper's extreme F-LaaS overhead (>100×)")
	}
	out := res.Render()
	for _, want := range []string{"Figure 9", "paper: 66.34%", "paper: 19.55%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestRenderHelpers(t *testing.T) {
	if got := fmtBytes(1536); got != "1.5KB" {
		t.Fatalf("fmtBytes(1536) = %q", got)
	}
	if got := fmtBytes(3 << 30); got != "3.0GB" {
		t.Fatalf("fmtBytes(3GB) = %q", got)
	}
	if got := fmtBytes(100); got != "100B" {
		t.Fatalf("fmtBytes(100) = %q", got)
	}
	if got := fmtCount(2_500_000); got != "2.5M" {
		t.Fatalf("fmtCount = %q", got)
	}
	if got := fmtCount(999); got != "999" {
		t.Fatalf("fmtCount = %q", got)
	}
	if got := fmtOverhead(25); got != "25×" {
		t.Fatalf("fmtOverhead(25) = %q", got)
	}
	if got := fmtOverhead(0.42); got != "42.0%" {
		t.Fatalf("fmtOverhead(0.42) = %q", got)
	}
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean = %v", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	table := renderTable("T", []string{"a", "bb"}, [][]string{{"1", "2"}})
	if !strings.Contains(table, "T\n") || !strings.Contains(table, "--") {
		t.Fatalf("renderTable output:\n%s", table)
	}
}
