package harness

import (
	"fmt"
	"time"

	"repro/internal/lease"
	"repro/internal/leasetree"
)

// Table1OpCounts are the lease-operation counts the paper measures
// (Table 1: 10, 100, 1000, 5000 lease ops).
var Table1OpCounts = []int{10, 100, 1000, 5000}

// Table1Row is one storage scheme's lookup latencies.
type Table1Row struct {
	Technique string
	// Latency maps op count → total wall time for that many find()
	// operations (the paper reports the same aggregate in µs).
	Latency map[int]time.Duration
}

// Table1Result reproduces Table 1: find() performance of the tree-based
// SL-Local against MurmurHash and SHA-256 hash tables.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 populates each store with 5000 leases and times find() batches
// at each op count. Repeats smooth scheduler noise.
func Table1(repeats int) (*Table1Result, error) {
	if repeats <= 0 {
		repeats = 3
	}
	type scheme struct {
		name string
		mk   func() leasetree.Store
	}
	schemes := []scheme{
		{"Murmur Hash", func() leasetree.Store { return leasetree.NewHashStore(leasetree.HashMurmur) }},
		{"SHA-256", func() leasetree.Store { return leasetree.NewHashStore(leasetree.HashSHA256) }},
		{"Tree", func() leasetree.Store { return leasetree.NewTree() }},
	}

	const population = 5000
	res := &Table1Result{}
	for _, s := range schemes {
		store := s.mk()
		alloc := leasetree.NewIDAllocator()
		block := alloc.NextBlock()
		ids := make([]lease.ID, 0, population)
		for i := 0; i < population; i++ {
			if block.Remaining() == 0 {
				block = alloc.NextBlock()
			}
			id, _ := block.Next()
			ids = append(ids, id)
			if err := store.Put(lease.Record{ID: id, GCL: lease.NewCountGCL(100), Owner: "t1"}); err != nil {
				return nil, fmt.Errorf("harness: populating %s: %w", s.name, err)
			}
		}
		row := Table1Row{Technique: s.name, Latency: make(map[int]time.Duration, len(Table1OpCounts))}
		for _, ops := range Table1OpCounts {
			var best time.Duration
			for r := 0; r < repeats; r++ {
				start := time.Now()
				for i := 0; i < ops; i++ {
					if _, err := store.Find(ids[(i*97)%population]); err != nil {
						return nil, fmt.Errorf("harness: %s find: %w", s.name, err)
					}
				}
				elapsed := time.Since(start)
				if r == 0 || elapsed < best {
					best = elapsed
				}
			}
			row.Latency[ops] = best
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// TreeFasterThanHashes reports whether the tree wins at the largest op
// count — the paper's key claim (58% vs Murmur, 89% vs SHA-256 at 5000).
func (r *Table1Result) TreeFasterThanHashes() bool {
	byName := make(map[string]time.Duration, len(r.Rows))
	maxOps := Table1OpCounts[len(Table1OpCounts)-1]
	for _, row := range r.Rows {
		byName[row.Technique] = row.Latency[maxOps]
	}
	tree, okT := byName["Tree"]
	mur, okM := byName["Murmur Hash"]
	sha, okS := byName["SHA-256"]
	return okT && okM && okS && tree < mur && tree < sha
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render() string {
	header := []string{"Technique"}
	for _, ops := range Table1OpCounts {
		header = append(header, fmt.Sprintf("%d", ops))
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Technique}
		for _, ops := range Table1OpCounts {
			cells = append(cells, fmt.Sprintf("%.1fµs", float64(row.Latency[ops].Nanoseconds())/1e3))
		}
		rows = append(rows, cells)
	}
	return renderTable("Table 1: find() latency for different lease-storage schemes (lease ops)", header, rows)
}
