package harness

import (
	"fmt"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/partition"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slmanager"
	"repro/internal/slremote"
	"repro/internal/workloads"
)

// Figure9Row is one workload's end-to-end overheads over vanilla for the
// three systems the paper compares (Figure 9): F-LaaS, Glamdring (with
// the same lease mechanism as SecureLease), and SecureLease. Overheads
// are slowdown fractions: 0.42 = 42% slower; 2272 = 2272× slower.
type Figure9Row struct {
	Workload string
	// Checks is the number of license checks the run performs.
	Checks int

	FLaaSOverhead float64
	GlamOverhead  float64
	SLOverhead    float64

	// Breakdown for SecureLease: SGX partition cost, local allocations,
	// and renewals (the paper's stacked bars).
	SLSGXOverhead     float64
	SLLocalAllocShare float64 // fraction of SL lease time spent on local allocation
	RemoteAttestsSL   int64
	RemoteAttestsFL   int64
}

// Figure9Result reproduces Figure 9 plus the headline aggregates of
// Section 7.4.
type Figure9Result struct {
	Rows []Figure9Row
	// MeanImprovementOverFLaaS — paper: 66.34%.
	MeanImprovementOverFLaaS float64
	// MeanImprovementOverGlam — paper: 19.55%.
	MeanImprovementOverGlam float64
	// RAReduction vs F-LaaS — paper: ≈99%.
	RAReduction float64
}

// figure9Checks returns the license-check count for a workload run: FaaS
// workloads check per function invocation (the paper's 10K-500K range),
// classic applications check per add-on use.
func figure9Checks(spec *workloads.Spec, scale int) int {
	checks := spec.ChecksPerRun
	if checks < 1 {
		checks = 1
	}
	if checks > 50_000 {
		checks = 50_000
	}
	return checks
}

// figure9VanillaCycles is the normalized vanilla runtime every overhead is
// measured against. The paper's workloads run for on the order of a
// minute on real inputs (Table 4's multi-GB scales); our profiles use
// scaled-down inputs, so the lease-machinery costs (which are absolute —
// attestations, network) are charged against a paper-scale baseline to
// keep the ratios meaningful. Partition overheads are ratios over the
// trace and are scale-invariant.
func figure9VanillaCycles(model sgx.CostModel) int64 {
	return model.DurationToCycles(60 * time.Second)
}

// Figure9 runs the full pipeline for every workload: profile → partitions
// → cost model for the SGX part, plus a real SL-Local/SL-Manager run for
// the lease part, and the F-LaaS remote-attestation-per-check model.
func Figure9(scale int, seed int64) (*Figure9Result, error) {
	model := sgx.DefaultCostModel()
	est := partition.NewEstimator(model)
	res := &Figure9Result{}

	var imprFL, imprGlam []float64
	var raSL, raFL int64

	for _, spec := range workloads.All() {
		prof, err := spec.Run(scale)
		if err != nil {
			return nil, fmt.Errorf("harness: running %s: %w", spec.Name, err)
		}
		sl, err := partition.SecureLease(prof.Graph, prof.Trace, partition.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		gl, err := partition.Glamdring(prof.Graph, 1)
		if err != nil {
			return nil, err
		}
		slCost := est.Evaluate(prof.Graph, prof.Trace, sl.Migrated)
		glCost := est.Evaluate(prof.Graph, prof.Trace, gl.Migrated)

		vanillaCycles := figure9VanillaCycles(model)
		checks := figure9Checks(spec, scale)

		// SecureLease lease path: run the real stack and measure the
		// virtual cycles it charges.
		leaseCycles, localShare, ras, err := runLeasePath(spec.License, checks, model)
		if err != nil {
			return nil, fmt.Errorf("harness: lease path for %s: %w", spec.Name, err)
		}

		// Glamdring uses the same lease mechanism (the paper enables it
		// with SecureLease's method), with ~8% fewer ECALLs because the
		// bigger enclave internalizes more of the logic. The discount
		// applies only to the local part of lease time — the remote
		// attestations are identical for both systems.
		raCycles := ras * model.DurationToCycles(model.RemoteAttest)
		glamLeaseCycles := raCycles + (leaseCycles-raCycles)*92/100

		// F-LaaS: every license check is a remote attestation.
		flaasRACycles := int64(checks) * model.DurationToCycles(model.RemoteAttest)

		// Partition overheads (slowdown ratios over the trace) are
		// scale-invariant; lease-machinery costs are absolute cycles and
		// are charged against the normalized vanilla runtime.
		row := Figure9Row{
			Workload: spec.Name,
			Checks:   checks,
			// F-LaaS uses the same migrated set as SecureLease (the
			// paper's fair-comparison setup), so its SGX part matches.
			FLaaSOverhead:     slCost.PredictedOverhead + float64(flaasRACycles)/float64(vanillaCycles),
			GlamOverhead:      glCost.PredictedOverhead + float64(glamLeaseCycles)/float64(vanillaCycles),
			SLOverhead:        slCost.PredictedOverhead + float64(leaseCycles)/float64(vanillaCycles),
			SLSGXOverhead:     slCost.PredictedOverhead,
			SLLocalAllocShare: localShare,
			RemoteAttestsSL:   ras,
			RemoteAttestsFL:   int64(checks),
		}
		res.Rows = append(res.Rows, row)

		tFL, tGL, tSL := 1+row.FLaaSOverhead, 1+row.GlamOverhead, 1+row.SLOverhead
		imprFL = append(imprFL, (tFL-tSL)/tFL)
		imprGlam = append(imprGlam, (tGL-tSL)/tGL)
		raSL += ras
		raFL += int64(checks)
	}

	var sumFL, sumGlam float64
	for i := range imprFL {
		sumFL += imprFL[i]
		sumGlam += imprGlam[i]
	}
	res.MeanImprovementOverFLaaS = sumFL / float64(len(imprFL))
	res.MeanImprovementOverGlam = sumGlam / float64(len(imprGlam))
	if raFL > 0 {
		res.RAReduction = 1 - float64(raSL)/float64(raFL)
	}
	return res, nil
}

// runLeasePath executes `checks` license checks through a real
// SL-Remote → SL-Local → SL-Manager stack on a fresh machine and returns
// the virtual cycles consumed by the lease machinery, the fraction of
// that time spent in local allocation (vs renewals), and the number of
// remote attestations performed.
func runLeasePath(license string, checks int, model sgx.CostModel) (cycles int64, localShare float64, ras int64, err error) {
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "fig9", EPCBytes: 16 << 20, Model: model})
	if err != nil {
		return 0, 0, 0, err
	}
	plat, err := attest.NewPlatform("fig9", m)
	if err != nil {
		return 0, 0, 0, err
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		return 0, 0, 0, err
	}
	// License sized so renewals happen at a realistic cadence: with the
	// paper's D=4 sub-leasing the run needs a couple of renewals.
	total := int64(checks) * 2
	if total < 2000 {
		total = 2000
	}
	if err := remote.RegisterLicense(license, lease.CountBased, total); err != nil {
		return 0, 0, 0, err
	}
	svc, err := sllocal.New(sllocal.DefaultConfig(), sllocal.Deps{
		Machine: m, Platform: plat, Remote: remote,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	start := m.Clock().Now()
	if err := svc.Init(); err != nil {
		return 0, 0, 0, err
	}
	app, err := m.CreateEnclave("fig9-app", []byte("fig9-app"), 0)
	if err != nil {
		return 0, 0, 0, err
	}
	mgr, err := slmanager.New(app, svc)
	if err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < checks; i++ {
		if err := mgr.Authorize(license); err != nil {
			return 0, 0, 0, fmt.Errorf("check %d: %w", i, err)
		}
	}
	cycles = m.Clock().Since(start)
	stats := m.Stats()
	ras = stats.RemoteAttests
	raCycles := ras * model.DurationToCycles(model.RemoteAttest)
	if cycles > 0 {
		localShare = float64(cycles-raCycles) / float64(cycles)
	}
	return cycles, localShare, ras, nil
}

// Render prints the figure's series as a table.
func (r *Figure9Result) Render() string {
	header := []string{"Workload", "Checks", "F-LaaS", "Glamdring", "SecureLease",
		"SL SGX-only", "SL local share", "RAs SL/FLaaS"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload,
			fmtCount(int64(row.Checks)),
			fmtOverhead(row.FLaaSOverhead),
			fmtOverhead(row.GlamOverhead),
			fmtOverhead(row.SLOverhead),
			fmtOverhead(row.SLSGXOverhead),
			fmt.Sprintf("%.1f%%", 100*row.SLLocalAllocShare),
			fmt.Sprintf("%d/%d", row.RemoteAttestsSL, row.RemoteAttestsFL),
		})
	}
	out := renderTable("Figure 9: end-to-end overhead vs vanilla (slowdown fraction; × = multiples)", header, rows)
	out += fmt.Sprintf("\nMean improvement over F-LaaS:    %.1f%% (paper: 66.34%%)\n", 100*r.MeanImprovementOverFLaaS)
	out += fmt.Sprintf("Mean improvement over Glamdring: %.1f%% (paper: 19.55%%)\n", 100*r.MeanImprovementOverGlam)
	out += fmt.Sprintf("Remote-attestation reduction:    %.1f%% (paper: ≈99%%)\n", 100*r.RAReduction)
	return out
}

func fmtOverhead(v float64) string {
	if v >= 10 {
		return fmt.Sprintf("%.0f×", v)
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}
