package harness

import (
	"strings"
	"testing"
)

func TestAblationPartition(t *testing.T) {
	res, err := AblationPartition(1, 7)
	if err != nil {
		t.Fatalf("AblationPartition: %v", err)
	}
	if len(res.Rows) != 11*4 {
		t.Fatalf("rows = %d, want 44", len(res.Rows))
	}
	// The security requirement holds under every variant: a key function
	// always ends up inside.
	for _, row := range res.Rows {
		if !row.KeyInside {
			t.Errorf("%s/%s: no key function migrated", row.Workload, row.Variant)
		}
		if row.Migrated == 0 {
			t.Errorf("%s/%s: empty partition", row.Workload, row.Variant)
		}
	}
	// The full partitioner must not be worse than the crippled variants
	// on mean overhead, and at least one ablation must be strictly worse
	// (otherwise the refinements are dead code).
	full := res.MeanOverhead("full")
	worse := 0
	for _, v := range []string{"no-merge", "no-trim", "no-merge-no-trim"} {
		m := res.MeanOverhead(v)
		if m < full-1e-9 {
			t.Errorf("variant %s mean overhead %.3f beats full %.3f", v, m, full)
		}
		if m > full*1.5+0.01 {
			worse++
		}
	}
	if worse == 0 {
		t.Error("no ablation shows a meaningful cost — refinements look like dead code")
	}
	out := res.Render()
	if !strings.Contains(out, "Ablation") || !strings.Contains(out, "no-merge") {
		t.Fatalf("render malformed")
	}
}

func TestAblationBatch(t *testing.T) {
	res, err := AblationBatch(1000)
	if err != nil {
		t.Fatalf("AblationBatch: %v", err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Attestations must decrease monotonically with batch size, and the
	// batch-10 row must show ~10× fewer than batch-1.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].LocalAttests >= res.Rows[i-1].LocalAttests {
			t.Errorf("batch %d attests %d not below batch %d's %d",
				res.Rows[i].Batch, res.Rows[i].LocalAttests,
				res.Rows[i-1].Batch, res.Rows[i-1].LocalAttests)
		}
		if res.Rows[i].LeaseCycles >= res.Rows[i-1].LeaseCycles {
			t.Errorf("batch %d cycles %d not below batch %d's %d",
				res.Rows[i].Batch, res.Rows[i].LeaseCycles,
				res.Rows[i-1].Batch, res.Rows[i-1].LeaseCycles)
		}
	}
	var b1, b10 int64
	for _, row := range res.Rows {
		switch row.Batch {
		case 1:
			b1 = row.LocalAttests
		case 10:
			b10 = row.LocalAttests
		}
	}
	if b1 != 10*b10 {
		t.Errorf("batch 1 = %d attests, batch 10 = %d; want exact 10×", b1, b10)
	}
	if !strings.Contains(res.Render(), "token batch size") {
		t.Fatal("render malformed")
	}
}

func TestAblationD(t *testing.T) {
	res, err := AblationD(4000)
	if err != nil {
		t.Fatalf("AblationD: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Larger D → more renewals, smaller crash exposure (both monotone).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Renewals < res.Rows[i-1].Renewals {
			t.Errorf("D=%v renewals %d below D=%v's %d",
				res.Rows[i].D, res.Rows[i].Renewals, res.Rows[i-1].D, res.Rows[i-1].Renewals)
		}
		if res.Rows[i].MaxOutstanding > res.Rows[i-1].MaxOutstanding {
			t.Errorf("D=%v exposure %d above D=%v's %d",
				res.Rows[i].D, res.Rows[i].MaxOutstanding, res.Rows[i-1].D, res.Rows[i-1].MaxOutstanding)
		}
	}
	if !strings.Contains(res.Render(), "scale-down factor D") {
		t.Fatal("render malformed")
	}
}

func TestScalableSGX(t *testing.T) {
	res, err := ScalableSGX(1, 7)
	if err != nil {
		t.Fatalf("ScalableSGX: %v", err)
	}
	if len(res.Rows) != 22 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	glamFaultsClassic := false
	for _, row := range res.Rows {
		// The 512 GB EPC clears all faults for everyone.
		if row.FaultsScalable != 0 {
			t.Errorf("%s/%s: faults under scalable SGX = %d", row.Workload, row.Scheme, row.FaultsScalable)
		}
		if row.Scheme == "securelease" && row.FaultsClassic != 0 {
			t.Errorf("%s: SecureLease faults under classic EPC = %d", row.Workload, row.FaultsClassic)
		}
		if row.Scheme == "glamdring" && row.FaultsClassic > 0 {
			glamFaultsClassic = true
		}
		if row.OverheadScalable > row.OverheadClassic+1e-9 {
			t.Errorf("%s/%s: scalable overhead above classic", row.Workload, row.Scheme)
		}
	}
	if !glamFaultsClassic {
		t.Error("Glamdring never faults under the classic EPC")
	}
	if !strings.Contains(res.Render(), "scalable SGX") {
		t.Fatal("render malformed")
	}
}

func TestFleet(t *testing.T) {
	clients := []FleetClient{
		{Name: "stable", Health: 0.99, Reliability: 0.95, Weight: 1},
		{Name: "flaky-net", Health: 0.95, Reliability: 0.6, Weight: 1},
		{Name: "crashy", Health: 0.5, Reliability: 0.9, Weight: 1},
		{Name: "weak", Health: 0.7, Reliability: 0.7, Weight: 0.5},
	}
	const pool = 100_000
	res, err := Fleet(clients, 6, pool, 42)
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if res.ChecksServed == 0 {
		t.Fatal("fleet served nothing")
	}
	if res.UnitsGranted > pool {
		t.Fatalf("granted %d from a %d pool", res.UnitsGranted, pool)
	}
	if res.ChecksServed+res.UnitsLost > res.UnitsGranted {
		t.Fatalf("served %d + lost %d exceeds granted %d",
			res.ChecksServed, res.UnitsLost, res.UnitsGranted)
	}
	// With a crashy fleet there must be crashes and forfeitures.
	if res.Crashes == 0 {
		t.Fatal("no crashes in a fleet with health 0.5 over 6 epochs")
	}
	if res.UnitsLost == 0 {
		t.Fatal("crashes forfeited nothing")
	}
	if !strings.Contains(res.Render(), "Fleet") {
		t.Fatal("render malformed")
	}
	if _, err := Fleet(nil, 1, 100, 1); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestFleetDeterministicPerSeed(t *testing.T) {
	clients := []FleetClient{
		{Name: "a", Health: 0.8, Reliability: 0.8, Weight: 1},
		{Name: "b", Health: 0.9, Reliability: 0.9, Weight: 1},
	}
	r1, err := Fleet(clients, 4, 20_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fleet(clients, 4, 20_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Crashes != r2.Crashes || r1.ChecksServed != r2.ChecksServed {
		t.Fatalf("fleet nondeterministic: %+v vs %+v", r1, r2)
	}
}
