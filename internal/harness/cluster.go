package harness

import (
	"container/heap"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/cluster"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flight"
	"repro/internal/seccrypto"
	"repro/internal/store"
)

// ClusterBenchOptions sizes the sharded-cluster experiment.
type ClusterBenchOptions struct {
	// Clients is the number of simulated SL-Local clients (default
	// 1,000,000). Clients are event-loop simulated — one virtual-time
	// heap, not a goroutine each — which is what makes a million of them
	// tractable on one machine.
	Clients int
	// Shards is the number of hash ranges / leader servers (default 4).
	Shards int
	// ClientsPerLicense groups clients into license-sharing parties
	// (default 20): Algorithm 1's multi-party scenario, scaled out.
	ClientsPerLicense int
	// RenewalsPerClient is how many renewal events each client fires
	// (default 2).
	RenewalsPerClient int
	// Kills is how many leader kill+failover events are injected at
	// evenly spaced points of the run (0: none). Each kill drains the
	// shard's follower, kills the leader, and promotes the follower; the
	// run continues against the new leader.
	Kills int
	// Seed drives every random choice (event jitter, consume decisions),
	// making runs reproducible.
	Seed int64
	// Pipeline is the maximum number of renewals in flight at once
	// (default 1: the classic lock-step loop). With Pipeline > 1 renewal
	// RPCs are dispatched to a worker pool, modelling the pipelined wire
	// client: conservation, audit, and totals-vs-ground-truth checks are
	// unchanged, but per-event completion order — and therefore the exact
	// grant/denial split for a given seed — is no longer deterministic.
	// Leader kills act as barriers: in-flight renewals drain first.
	Pipeline int
	// Dir is the state root (default: a fresh temp dir, removed after).
	Dir string
	// Registry receives cluster_* metrics (nil: none).
	Registry *obs.Registry
	// Observe gives every node its own observability bundle and, at the
	// end of the run, scrapes the whole fleet through an obs/fleet
	// aggregator: the result carries the merged failover timeline and
	// the run fails if the fleet view disagrees with the ground truth.
	Observe bool
	// ObsDump, with Observe, writes the aggregator's output into this
	// directory: metrics.prom (merged Prometheus text), metrics.json
	// (full-fidelity export), and flight.json (the merged event
	// timeline).
	ObsDump string
}

// ShardBenchStats is one shard's share of the run.
type ShardBenchStats struct {
	Shard       int
	Licenses    int
	Clients     int
	Renewals    int64
	Denials     int64
	RenewPerSec float64
	P50Micros   float64
	P99Micros   float64
	Failovers   int
}

// ClusterBenchResult summarizes the cluster experiment.
type ClusterBenchResult struct {
	Clients   int
	Shards    int
	Licenses  int
	Renewals  int64
	Denials   int64
	Consumes  int64
	Kills     int
	SetupTime time.Duration
	RunTime   time.Duration
	PerShard  []ShardBenchStats
	// AuditVerified is set when kills were injected: every shard's audit
	// chain re-verified across leader incarnations.
	AuditVerified bool
	// Timeline is the fleet-merged failover flight events (probe
	// timeouts, drains, promotions, epoch bumps), time-ordered across
	// nodes. Populated only with Observe.
	Timeline []flight.Event
	// FleetNodes is the per-node scrape health at end of run (Observe
	// only): dead leaders show up as down, which is the expected shape.
	FleetNodes []fleet.NodeStatus
}

// clusterEvent is one pending renewal in virtual time. Ordering ties
// break on the client index so the event sequence is a pure function of
// the options.
type clusterEvent struct {
	vt     int64
	client int32
}

type eventHeap []clusterEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].vt != h[j].vt {
		return h[i].vt < h[j].vt
	}
	return h[i].client < h[j].client
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(clusterEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// ClusterBench drives a sharded SL-Remote cluster with an event-loop
// client simulation: every client is a heap entry firing renewal (and
// consume) events against its license's owning shard leader, while each
// shard's follower tails the leader's WAL over the wire in the
// background. With Kills > 0 leaders are killed and failed over mid-run.
// The run fails unless, at the end, lease-unit conservation holds on
// every shard and cluster-wide, and (when kills happened) every audit
// chain verifies.
func ClusterBench(opts ClusterBenchOptions) (*ClusterBenchResult, error) {
	if opts.Clients <= 0 {
		opts.Clients = 1_000_000
	}
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if opts.ClientsPerLicense <= 0 {
		opts.ClientsPerLicense = 20
	}
	if opts.RenewalsPerClient <= 0 {
		opts.RenewalsPerClient = 2
	}
	dir := opts.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "slcluster-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("cluster-bench-%d", opts.Seed)))
	sealKey, err := seccrypto.KeyFromBytes(sum[:seccrypto.KeySize])
	if err != nil {
		return nil, err
	}

	setupStart := time.Now()
	c, err := cluster.New(cluster.Options{
		Shards:  opts.Shards,
		Dir:     dir,
		SealKey: sealKey,
		// SyncOff is the bench's durability floor: TailSince still serves
		// only store-acknowledged bytes, so replication semantics are the
		// production ones; only fsync latency is elided.
		SyncMode:     store.SyncOff,
		PullInterval: 20 * time.Millisecond,
		Audit:        opts.Kills > 0,
		Registry:     opts.Registry,
		Observe:      opts.Observe,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// One license per ClientsPerLicense-sized party; budget sized so two
	// renewals per client mostly succeed (denials are legal and counted).
	nLicenses := opts.Clients / opts.ClientsPerLicense
	if nLicenses < opts.Shards {
		nLicenses = opts.Shards
	}
	licenses := make([]string, nLicenses)
	licShard := make([]int32, nLicenses)
	for l := range licenses {
		licenses[l] = fmt.Sprintf("lic-%07d", l)
		licShard[l] = int32(c.Route(licenses[l]))
		total := int64(opts.ClientsPerLicense) * 500
		if err := c.RegisterLicense(licenses[l], lease.CountBased, total); err != nil {
			return nil, err
		}
	}

	type simClient struct {
		slid    string
		license int32
		left    int8
	}
	clients := make([]simClient, opts.Clients)
	for i := range clients {
		l := int32(i % nLicenses)
		remote := c.Leader(int(licShard[l])).Remote()
		init, err := remote.InitClient("", attest.Quote{}, nil)
		if err != nil {
			return nil, fmt.Errorf("harness: init client %d: %w", i, err)
		}
		clients[i] = simClient{slid: init.SLID, license: l, left: int8(opts.RenewalsPerClient)}
	}
	setupTime := time.Since(setupStart)

	res := &ClusterBenchResult{
		Clients:   opts.Clients,
		Shards:    opts.Shards,
		Licenses:  nLicenses,
		Kills:     opts.Kills,
		SetupTime: setupTime,
		PerShard:  make([]ShardBenchStats, opts.Shards),
	}
	for s := range res.PerShard {
		res.PerShard[s].Shard = s
	}
	for _, ls := range licShard {
		res.PerShard[ls].Licenses++
	}
	for _, cl := range clients {
		res.PerShard[licShard[cl.license]].Clients++
	}

	// Seed the virtual-time heap: every client's first renewal lands at a
	// jittered offset, so shards interleave instead of marching in phase.
	rng := rand.New(rand.NewSource(opts.Seed))
	const interval = 1 << 20 // virtual ticks between one client's renewals
	h := make(eventHeap, opts.Clients)
	for i := range clients {
		h[i] = clusterEvent{vt: rng.Int63n(interval), client: int32(i)}
	}
	heap.Init(&h)

	totalEvents := int64(opts.Clients) * int64(opts.RenewalsPerClient)
	killEvery := int64(0)
	if opts.Kills > 0 {
		killEvery = totalEvents / int64(opts.Kills+1)
	}
	nextKill := killEvery
	killShard := 0

	latencies := make([][]float64, opts.Shards)
	runStart := time.Now()
	var processed int64

	// renew runs one client's renewal (and, on a coin flip, its consume
	// report) and folds the outcome into the result. In pipelined mode it
	// runs on worker goroutines, so the fold is under resMu.
	var resMu sync.Mutex
	var rpcErr error
	renew := func(slid string, license int32, coin bool) {
		shard := int(licShard[license])
		remote := c.Leader(shard).Remote()
		start := time.Now()
		grant, err := remote.RenewLease(slid, licenses[license])
		micros := float64(time.Since(start).Microseconds())
		var consumeErr error
		consumed := false
		if err == nil && grant.Units > 1 && coin {
			// Half the time the client reports half its grant spent,
			// exercising the consumed side of the ledger.
			consumeErr = remote.ConsumeReport(slid, licenses[license], grant.Units/2)
			consumed = consumeErr == nil
		}
		resMu.Lock()
		defer resMu.Unlock()
		latencies[shard] = append(latencies[shard], micros)
		res.PerShard[shard].Renewals++
		res.Renewals++
		if err != nil {
			res.PerShard[shard].Denials++
			res.Denials++
		}
		if consumed {
			res.Consumes++
		}
		if consumeErr != nil && rpcErr == nil {
			rpcErr = fmt.Errorf("harness: consume: %w", consumeErr)
		}
	}

	// Pipelined dispatch: an unbuffered channel into Pipeline workers
	// bounds in-flight renewals at exactly Pipeline. drain is the barrier
	// used before every leader kill and at end of run — FailOver must never
	// race an in-flight RPC.
	var inflight sync.WaitGroup
	var tasks chan func()
	if opts.Pipeline > 1 {
		tasks = make(chan func())
		defer close(tasks)
		for w := 0; w < opts.Pipeline; w++ {
			go func() {
				for f := range tasks {
					f()
					inflight.Done()
				}
			}()
		}
	}
	drain := func() error {
		inflight.Wait()
		resMu.Lock()
		defer resMu.Unlock()
		return rpcErr
	}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(clusterEvent)
		cl := &clients[ev.client]
		if tasks != nil {
			// The coin is drawn on the event loop so the rng sequence stays
			// a pure function of the options even though completion order
			// is not.
			slid, license, coin := cl.slid, cl.license, rng.Intn(2) == 0
			inflight.Add(1)
			tasks <- func() { renew(slid, license, coin) }
		} else {
			renew(cl.slid, cl.license, rng.Intn(2) == 0)
			if rpcErr != nil {
				return nil, rpcErr
			}
		}
		cl.left--
		if cl.left > 0 {
			heap.Push(&h, clusterEvent{vt: ev.vt + interval, client: ev.client})
		}

		processed++
		// killShard counts kills performed; summing res.PerShard Failovers
		// would say the same thing, but reading res here would race the
		// worker pool's resMu-guarded folds.
		if killEvery > 0 && processed >= nextKill && opts.Kills > 0 && killShard < opts.Kills {
			if err := drain(); err != nil {
				return nil, err
			}
			shard := killShard % opts.Shards
			killShard++
			nextKill += killEvery
			if err := c.FailOver(shard); err != nil {
				return nil, fmt.Errorf("harness: failover shard %d: %w", shard, err)
			}
			res.PerShard[shard].Failovers++
		}
	}
	if err := drain(); err != nil {
		return nil, err
	}
	res.RunTime = time.Since(runStart)

	for s := range res.PerShard {
		st := &res.PerShard[s]
		if res.RunTime > 0 {
			st.RenewPerSec = float64(st.Renewals) / res.RunTime.Seconds()
		}
		st.P50Micros = percentile(latencies[s], 0.50)
		st.P99Micros = percentile(latencies[s], 0.99)
	}

	// The whole point: a million clients, shard kills and all, and not
	// one lease unit created or destroyed — per shard and cluster-wide.
	if err := c.CheckConservation(); err != nil {
		return nil, fmt.Errorf("harness: cluster bench broke conservation: %w", err)
	}
	if opts.Kills > 0 {
		if err := c.VerifyAudit(); err != nil {
			return nil, fmt.Errorf("harness: cluster bench broke the audit chain: %w", err)
		}
		res.AuditVerified = true
	}
	if opts.Observe {
		if err := observeFleet(c, res, opts.ObsDump); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// observeFleet stands a fleet aggregator over every node the run ever
// created (dead leaders included — their scrapes fail, which is the
// point), cross-checks the merged view against the run's ground truth,
// extracts the failover timeline, and optionally dumps the artifacts.
func observeFleet(c *cluster.Cluster, res *ClusterBenchResult, dumpDir string) error {
	bundles := c.ObsTargets()
	targets := make([]fleet.Target, 0, len(bundles))
	for _, o := range bundles {
		targets = append(targets, fleet.Target{Name: o.Name, URL: o.URL()})
	}
	agg := fleet.New(fleet.Options{Targets: targets})
	// Dead nodes refuse the scrape; the error is part of the story, not a
	// failure of the run.
	_ = agg.ScrapeOnce()
	res.FleetNodes = agg.Nodes()

	// The merged fleet view must agree with the run's own ledger: the
	// summed slremote renewal counters across every node account for at
	// least the renewals the bench issued (promoted followers inherit
	// their counters, dead leaders take theirs to the grave — so the sum
	// can undershoot only by what died with killed leaders).
	merged := agg.Merged()
	var granted, denied float64
	for _, ef := range merged {
		switch ef.Name {
		case "slremote_renewals_total":
			for _, ch := range ef.Children {
				granted += ch.Value
			}
		case "slremote_renewals_denied_total":
			for _, ch := range ef.Children {
				denied += ch.Value
			}
		}
	}
	if res.Kills == 0 {
		if int64(granted) != res.Renewals-res.Denials || int64(denied) != res.Denials {
			return fmt.Errorf("harness: fleet view disagrees: merged grants %d / denials %d, bench saw %d / %d",
				int64(granted), int64(denied), res.Renewals-res.Denials, res.Denials)
		}
	}

	res.Timeline = failoverTimeline(agg.Events())

	if dumpDir != "" {
		if err := os.MkdirAll(dumpDir, 0o755); err != nil {
			return fmt.Errorf("harness: obs dump dir: %w", err)
		}
		if err := dumpFile(filepath.Join(dumpDir, "metrics.prom"), agg.WritePrometheus); err != nil {
			return err
		}
		if err := dumpFile(filepath.Join(dumpDir, "metrics.json"), agg.WriteExport); err != nil {
			return err
		}
		if err := dumpFile(filepath.Join(dumpDir, "flight.json"), func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(agg.Events())
		}); err != nil {
			return err
		}
	}
	return nil
}

// failoverTimeline filters a merged flight stream down to the events
// that narrate leadership changes.
func failoverTimeline(events []flight.Event) []flight.Event {
	var out []flight.Event
	for _, ev := range events {
		if strings.HasPrefix(ev.Kind, "failover.") || ev.Kind == "cluster.epoch_bump" {
			out = append(out, ev)
		}
	}
	return out
}

func dumpFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("harness: obs dump: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("harness: obs dump %s: %w", path, err)
	}
	return f.Close()
}

// percentile returns the p-th percentile of samples (sorted in place).
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	i := int(p * float64(len(samples)-1))
	return samples[i]
}

// Render prints the per-shard table and run summary.
func (r *ClusterBenchResult) Render() string {
	header := []string{"Shard", "Licenses", "Clients", "Renewals", "Renew/s", "p50 µs", "p99 µs", "Denials", "Failovers"}
	rows := make([][]string, 0, len(r.PerShard))
	for _, s := range r.PerShard {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Shard),
			fmtCount(int64(s.Licenses)),
			fmtCount(int64(s.Clients)),
			fmtCount(s.Renewals),
			fmtCount(int64(s.RenewPerSec)),
			fmt.Sprintf("%.0f", s.P50Micros),
			fmt.Sprintf("%.0f", s.P99Micros),
			fmtCount(s.Denials),
			fmt.Sprintf("%d", s.Failovers),
		})
	}
	title := fmt.Sprintf("Cluster: %s clients over %d shards (%s licenses, %d kills)",
		fmtCount(int64(r.Clients)), r.Shards, fmtCount(int64(r.Licenses)), r.Kills)
	out := renderTable(title, header, rows)
	out += fmt.Sprintf("\nSetup %v, run %v: %s renewals (%s denied), %s consume reports.\n",
		r.SetupTime.Round(time.Millisecond), r.RunTime.Round(time.Millisecond),
		fmtCount(r.Renewals), fmtCount(r.Denials), fmtCount(r.Consumes))
	out += "Conservation verified per shard and cluster-wide"
	if r.AuditVerified {
		out += "; audit chains verified across failovers"
	}
	out += ".\n"
	if len(r.Timeline) > 0 {
		out += "\nFailover timeline (flight recorder, merged across nodes):\n"
		for _, ev := range r.Timeline {
			out += "  " + ev.String() + "\n"
		}
	}
	if len(r.FleetNodes) > 0 {
		down := 0
		for _, n := range r.FleetNodes {
			if !n.Up {
				down++
			}
		}
		out += fmt.Sprintf("Fleet scrape: %d nodes observed, %d down (dead leader incarnations stay listed).\n",
			len(r.FleetNodes), down)
	}
	return out
}
