package wire

import (
	"io"
	"sync/atomic"

	"repro/internal/obs"
)

// rpcTypeMetrics is one message type's pre-resolved counter/histogram
// handles. Resolving them once at ExposeMetrics time keeps the hot path
// free of per-RPC label-map lookups.
type rpcTypeMetrics struct {
	rpcs    *obs.Counter
	errors  *obs.Counter
	latency *obs.Histogram
}

// resolveTypeMetrics pre-resolves every known message type's handles (plus
// the "unknown" bucket) from the three vectors. The returned map is
// read-only after construction and therefore safe for concurrent lookups.
func resolveTypeMetrics(rpcs, errs *obs.CounterVec, latency *obs.HistogramVec) map[string]rpcTypeMetrics {
	labels := []string{
		TypeInit, TypeRenew, TypeEscrow, TypeRegisterLicense,
		TypeReportCrash, TypeSetProfile, TypeLicenseInfo, TypeConsume,
		TypeReplPull, TypeObsPull, "unknown",
	}
	byType := make(map[string]rpcTypeMetrics, len(labels))
	for _, l := range labels {
		byType[l] = rpcTypeMetrics{
			rpcs:    rpcs.With(l),
			errors:  errs.With(l),
			latency: latency.With(l),
		}
	}
	return byType
}

// clientMetrics holds the client's active metrics; nil until ExposeMetrics
// runs. tracer may be nil (spans become no-ops).
type clientMetrics struct {
	byType map[string]rpcTypeMetrics // read-only after ExposeMetrics
	tracer *obs.Tracer
}

// forType returns the pre-resolved handles for a message type label (the
// caller passes rpcLabel output, so the lookup always hits).
func (m *clientMetrics) forType(label string) rpcTypeMetrics {
	return m.byType[label]
}

// ExposeMetrics registers the client's RPC metrics with an obs registry
// and, when tr is non-nil, records one trace span per RPC round trip. The
// span's context rides in the envelope so the server's handler span joins
// the same trace.
//
// Metric inventory: wire_client_rpcs_total{type}, wire_client_rpc_errors_total{type},
// wire_client_rpc_latency_seconds{type} (histogram), wire_client_bytes_sent_total,
// wire_client_bytes_received_total, wire_client_dial_retries_total,
// wire_client_redirects_total, wire_client_pool_hits_total,
// wire_client_pool_misses_total, wire_client_wrong_id_total.
func (c *Client) ExposeMetrics(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil {
		return
	}
	reg.CounterFunc("wire_client_bytes_sent_total", "Frame bytes written to the server.", nil,
		func() float64 { return float64(c.bytesOut.Load()) })
	reg.CounterFunc("wire_client_bytes_received_total", "Frame bytes read from the server.", nil,
		func() float64 { return float64(c.bytesIn.Load()) })
	reg.CounterFunc("wire_client_dial_retries_total", "Connect attempts retried after a transient failure.", nil,
		func() float64 { return float64(c.dialRetries.Load()) })
	reg.CounterFunc("wire_client_redirects_total", "Connection pools re-pointed after a not-leader redirect.", nil,
		func() float64 { return float64(c.redirects.Load()) })
	reg.CounterFunc("wire_client_pool_hits_total", "RPCs served by an already-open pooled connection.", nil,
		func() float64 { return float64(c.poolHits.Load()) })
	reg.CounterFunc("wire_client_pool_misses_total", "RPCs or redirect hops that had to dial a connection.", nil,
		func() float64 { return float64(c.poolMisses.Load()) })
	reg.CounterFunc("wire_client_wrong_id_total", "Responses rejected for carrying no or an unknown correlation ID.", nil,
		func() float64 { return float64(c.wrongID.Load()) })
	c.metrics.Store(&clientMetrics{
		byType: resolveTypeMetrics(
			reg.CounterVec("wire_client_rpcs_total", "RPC round trips, by message type.", "type"),
			reg.CounterVec("wire_client_rpc_errors_total", "Failed RPC round trips, by message type.", "type"),
			reg.HistogramVec("wire_client_rpc_latency_seconds", "RPC round-trip latency, by message type.", nil, "type"),
		),
		tracer: tr,
	})
}

// serverMetrics holds the server's active metrics; nil until ExposeMetrics
// runs. tracer may be nil (spans become no-ops).
type serverMetrics struct {
	byType map[string]rpcTypeMetrics // read-only after ExposeMetrics
	conns  *obs.Gauge                // wire_server_open_connections
	tracer *obs.Tracer
}

func (m *serverMetrics) forType(label string) rpcTypeMetrics {
	return m.byType[label]
}

// ExposeMetrics registers the server's RPC metrics with an obs registry
// and, when tr is non-nil, records one trace span per handled RPC.
//
// Metric inventory: wire_server_rpcs_total{type}, wire_server_rpc_errors_total{type},
// wire_server_rpc_latency_seconds{type} (histogram), wire_server_open_connections,
// wire_server_handler_panics_total, wire_server_bytes_received_total,
// wire_server_bytes_sent_total, wire_server_shutdown_drained_total,
// wire_server_shutdown_aborted_total.
func (s *Server) ExposeMetrics(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil {
		return
	}
	reg.CounterFunc("wire_server_handler_panics_total", "Handler panics recovered per envelope.", nil,
		func() float64 { return float64(s.panics.Load()) })
	reg.CounterFunc("wire_server_bytes_received_total", "Frame bytes read from clients.", nil,
		func() float64 { return float64(s.bytesIn.Load()) })
	reg.CounterFunc("wire_server_bytes_sent_total", "Frame bytes written to clients.", nil,
		func() float64 { return float64(s.bytesOut.Load()) })
	reg.CounterFunc("wire_server_shutdown_drained_total", "Connections that shut down after finishing in-flight work.", nil,
		func() float64 { return float64(s.drained.Load()) })
	reg.CounterFunc("wire_server_shutdown_aborted_total", "Connections force-closed at the Shutdown deadline.", nil,
		func() float64 { return float64(s.aborted.Load()) })
	s.metrics.Store(&serverMetrics{
		byType: resolveTypeMetrics(
			reg.CounterVec("wire_server_rpcs_total", "RPCs handled, by message type.", "type"),
			reg.CounterVec("wire_server_rpc_errors_total", "RPCs answered with an error envelope, by message type.", "type"),
			reg.HistogramVec("wire_server_rpc_latency_seconds", "Server-side RPC handling latency, by message type.", nil, "type"),
		),
		conns:  reg.Gauge("wire_server_open_connections", "Currently open client connections."),
		tracer: tr,
	})
}

// rpcLabel bounds metric label cardinality against hostile peers: unknown
// message types collapse into one label value.
func rpcLabel(msgType string) string {
	switch msgType {
	case TypeInit, TypeRenew, TypeEscrow, TypeRegisterLicense,
		TypeReportCrash, TypeSetProfile, TypeLicenseInfo, TypeConsume,
		TypeReplPull, TypeObsPull:
		return msgType
	default:
		return "unknown"
	}
}

// countWriter and countReader tally frame bytes into an atomic as they
// pass through.
type countWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

type countReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}
