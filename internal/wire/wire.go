// Package wire is the network protocol between SL-Local daemons and the
// SL-Remote license server: length-prefixed JSON messages over TCP. It
// lets the same sllocal.Service run either embedded (direct binding to a
// *slremote.Server) or against a real server process, which is how the
// cmd/sl-remote and cmd/sl-local binaries deploy.
//
// The protocol carries the three SL-Local→SL-Remote operations (init,
// renew, escrow) plus administrative calls (license registration, crash
// reports, profile updates). Payload confidentiality/authenticity in a
// real deployment would ride on the RA-derived session key; the simulation
// transports structured plaintext and enforces trust via the attestation
// layer's quote verification, which is the part the paper's design
// depends on.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/attest"
)

// MaxMessageSize bounds one frame (defense against corrupt peers).
const MaxMessageSize = 16 << 20

// Message types.
const (
	TypeInit            = "init"
	TypeRenew           = "renew"
	TypeEscrow          = "escrow"
	TypeRegisterLicense = "register_license"
	TypeReportCrash     = "report_crash"
	TypeSetProfile      = "set_profile"
	TypeLicenseInfo     = "license_info"
	TypeConsume         = "consume"
	TypeError           = "error"
	TypeOK              = "ok"
	// TypeNotLeader answers a license-scoped request sent to a server that
	// does not own the license's hash range: the payload names the shard's
	// current leader so the client re-routes transparently.
	TypeNotLeader = "not_leader"
	// TypeReplPull / TypeReplBatch are the WAL replication stream: a
	// follower pulls the leader's durable records after its last applied
	// position.
	TypeReplPull  = "repl_pull"
	TypeReplBatch = "repl_batch"
	// TypeObsPull asks a server for its observability state (full-fidelity
	// metric export, trace dump, flight-recorder dump) over the attested
	// channel, so a fleet scraper needs no separate plaintext HTTP port.
	TypeObsPull = "obs_pull"
)

// TraceContext carries the caller's obs.SpanContext across the wire so
// the server's handler span joins the client's trace. TraceID is the
// 32-hex-digit obs.TraceID; SpanID is the caller's span within it.
type TraceContext struct {
	TraceID string `json:"trace_id"`
	SpanID  uint64 `json:"span_id,omitempty"`
}

// Envelope frames every message: a type tag, an optional correlation ID,
// an optional trace context, and the JSON payload.
//
// ID correlates pipelined requests with their responses: a client may have
// many envelopes in flight on one connection, and the server echoes each
// request's ID on its reply so the client's demux reader hands every
// response to the waiter that sent it. ID 0 (absent on the wire) is the
// legacy one-at-a-time protocol: the server answers in order, which is
// what hand-rolled peers that never set IDs still get.
type Envelope struct {
	Type    string          `json:"type"`
	ID      uint64          `json:"id,omitempty"`
	Trace   *TraceContext   `json:"trace,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// InitRequest is the SL-Local init() handshake. The quote travels as
// attest.Quote directly — its JSON codec enforces field sizes — so the
// wire and attestation layers cannot drift apart.
type InitRequest struct {
	SLID  string       `json:"slid,omitempty"`
	Quote attest.Quote `json:"quote"`
}

// InitResponse returns the SLID and, after a graceful shutdown, the OBK.
type InitResponse struct {
	SLID   string `json:"slid"`
	OBK    []byte `json:"obk,omitempty"`
	HasOBK bool   `json:"has_obk"`
}

// RenewRequest asks for a sub-GCL.
type RenewRequest struct {
	SLID    string `json:"slid"`
	License string `json:"license"`
}

// RenewResponse carries the grant.
type RenewResponse struct {
	Units      int64 `json:"units"`
	Kind       uint8 `json:"kind"`
	Counter    int64 `json:"counter"`
	IntervalNS int64 `json:"interval_ns,omitempty"`
}

// EscrowRequest stores the lease-tree root key.
type EscrowRequest struct {
	SLID string `json:"slid"`
	Key  []byte `json:"key"`
}

// RegisterLicenseRequest registers a license (admin).
type RegisterLicenseRequest struct {
	ID       string `json:"id"`
	Kind     uint8  `json:"kind"`
	TotalGCL int64  `json:"total_gcl"`
}

// ReportCrashRequest applies the pessimistic crash policy (admin/monitor).
type ReportCrashRequest struct {
	SLID string `json:"slid"`
}

// SetProfileRequest updates a client's Algorithm 1 inputs.
type SetProfileRequest struct {
	SLID        string  `json:"slid"`
	Health      float64 `json:"health"`
	Reliability float64 `json:"reliability"`
	Weight      float64 `json:"weight"`
}

// ConsumeRequest reports units a client spent from its sub-GCL, moving
// them from the server's outstanding view to the license's consumed
// ledger.
type ConsumeRequest struct {
	SLID    string `json:"slid"`
	License string `json:"license"`
	Units   int64  `json:"units"`
}

// LicenseInfoRequest fetches license state (admin).
type LicenseInfoRequest struct {
	ID string `json:"id"`
}

// LicenseInfoResponse mirrors slremote.License.
type LicenseInfoResponse struct {
	ID        string `json:"id"`
	Kind      uint8  `json:"kind"`
	TotalGCL  int64  `json:"total_gcl"`
	Remaining int64  `json:"remaining"`
	Revoked   bool   `json:"revoked"`
	Lost      int64  `json:"lost"`
	Consumed  int64  `json:"consumed,omitempty"`
}

// NotLeaderResponse redirects a license-scoped request to the shard's
// current leader. Epoch is the cluster directory epoch the answer is valid
// for; a client seeing epochs regress is talking to a stale server.
type NotLeaderResponse struct {
	License string `json:"license"`
	Leader  string `json:"leader,omitempty"`
	Epoch   uint64 `json:"epoch"`
}

// ReplPullRequest asks for the WAL records after position (gen, offset).
// MaxBytes caps one batch's raw record bytes (0: server default); the
// server may return less but always makes progress when records exist.
type ReplPullRequest struct {
	Gen      uint64 `json:"gen"`
	Offset   int64  `json:"offset"`
	MaxBytes int    `json:"max_bytes,omitempty"`
}

// ReplBatchResponse mirrors store.TailBatch across the wire. Snapshot and
// the escrow-bearing records inside Records are sealed by the leader
// before they ever reach its WAL, so the stream carries no plaintext key
// material regardless of the channel.
type ReplBatchResponse struct {
	Gen        uint64   `json:"gen"`
	Rebase     bool     `json:"rebase,omitempty"`
	Snapshot   []byte   `json:"snapshot,omitempty"`
	Records    [][]byte `json:"records,omitempty"`
	NextOffset int64    `json:"next_offset"`
	Tip        int64    `json:"tip"`
}

// ObsPullRequest asks for a server's observability state. Trace, when
// non-empty, filters the trace dump to one hex TraceID.
type ObsPullRequest struct {
	Trace string `json:"trace,omitempty"`
}

// ObsPullResponse carries the server's full-fidelity metric export, trace
// dump, and flight-recorder dump as raw JSON documents (the same bytes the
// HTTP endpoints serve), so the fleet scraper parses one format regardless
// of transport.
type ObsPullResponse struct {
	Metrics json.RawMessage `json:"metrics,omitempty"`
	Trace   json.RawMessage `json:"trace,omitempty"`
	Events  json.RawMessage `json:"events,omitempty"`
}

// ErrorResponse reports a server-side failure.
type ErrorResponse struct {
	Message string `json:"message"`
}

// ErrRemote wraps failures reported by the peer.
var ErrRemote = errors.New("wire: remote error")

// ErrNotLeader reports a license-scoped request that could not reach the
// owning shard leader: every redirect hop still answered not-leader (a
// routing loop between stale servers), or the reply named no leader at
// all (the shard is mid-failover).
var ErrNotLeader = errors.New("wire: not the shard leader")

// WriteMessage frames and writes one envelope.
func WriteMessage(w io.Writer, msgType string, payload any) error {
	return WriteMessageID(w, msgType, 0, payload, nil)
}

// WriteMessageTrace is WriteMessage with an optional trace context
// injected into the envelope (nil tc for untraced messages).
func WriteMessageTrace(w io.Writer, msgType string, payload any, tc *TraceContext) error {
	return WriteMessageID(w, msgType, 0, payload, tc)
}

// WriteMessageID is WriteMessageTrace with a correlation ID (0 omits the
// field, byte-identical to the pre-pipelining framing). The frame is
// encoded into a pooled buffer and written with ONE Write call — header
// and body together — so message boundaries align with Write boundaries
// (which fault injectors that reorder or drop whole writes rely on).
func WriteMessageID(w io.Writer, msgType string, id uint64, payload any, tc *TraceContext) error {
	return writeMessageFast(w, msgType, id, payload, tc)
}

// ReadMessage reads one envelope.
func ReadMessage(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > MaxMessageSize {
		return Envelope{}, fmt.Errorf("wire: invalid frame size %d", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(r, frame); err != nil {
		return Envelope{}, fmt.Errorf("wire: reading frame: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(frame, &env); err != nil {
		return Envelope{}, fmt.Errorf("wire: decoding envelope: %w", err)
	}
	return env, nil
}

// DecodePayload unmarshals an envelope's payload into out.
func DecodePayload(env Envelope, out any) error {
	if len(env.Payload) == 0 {
		return errors.New("wire: empty payload")
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("wire: decoding %s payload: %w", env.Type, err)
	}
	return nil
}

// RemoteErr extracts the error from an error envelope, or describes the
// unexpected type.
func RemoteErr(env Envelope) error {
	if env.Type == TypeError {
		var e ErrorResponse
		if err := DecodePayload(env, &e); err == nil {
			return fmt.Errorf("%w: %s", ErrRemote, e.Message)
		}
	}
	return fmt.Errorf("%w: unexpected reply type %q", ErrRemote, env.Type)
}
