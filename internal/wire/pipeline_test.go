package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/chaos"
	"repro/internal/lease"
	"repro/internal/ratls"
	"repro/internal/slremote"
)

// pipeDeployment is a wire deployment for pipelining tests: a permissive
// SL-Remote (nil attestation service, so InitClient needs no quote) behind
// a wire server whose listener can be wrapped before serving starts.
type pipeDeployment struct {
	remote *slremote.Server
	server *Server
	addr   string
}

func startPipeDeployment(t testing.TB, wrap func(net.Listener) net.Listener) *pipeDeployment {
	t.Helper()
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("slremote.NewServer: %v", err)
	}
	srv, err := NewServer(remote, t.Logf, ratls.Insecure())
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveLn := net.Listener(ln)
	if wrap != nil {
		serveLn = wrap(ln)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(serveLn)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return &pipeDeployment{remote: remote, server: srv, addr: ln.Addr().String()}
}

// TestPipelinedDemuxRaceStress is the demux torture test: 64 goroutines
// share ONE pipelined connection and interleave renewals, consume reports,
// license lookups, and deliberate error replies, while chaos Reorder
// faults on the server's listener force response frames out of request
// order. Every worker owns a distinct license whose registered TotalGCL is
// its correlation witness: a reply delivered to the wrong waiter surfaces
// as a mismatched license ID or total, not as a flake. Run under -race.
func TestPipelinedDemuxRaceStress(t *testing.T) {
	const workers = 64
	const iters = 16
	licName := func(i int) string { return fmt.Sprintf("lic-%02d", i) }
	licTotal := func(i int) int64 { return 100_000 + int64(i)*7 }

	dir := chaos.NewNetDirector()
	// Reorder replies throughout the response stream (the stream is
	// roughly workers*iters frames long), with a few delays mixed in so
	// handler goroutines also finish out of order.
	for k := 0; k < 48; k++ {
		dir.Arm(chaos.ConnFault{Kind: chaos.Reorder, After: 5 + 18*k})
	}
	for k := 0; k < 8; k++ {
		dir.Arm(chaos.ConnFault{Kind: chaos.Delay, After: 40 + 111*k})
	}
	d := startPipeDeployment(t, func(ln net.Listener) net.Listener {
		return chaos.WrapListener(ln, dir)
	})

	slids := make([]string, workers)
	for i := 0; i < workers; i++ {
		if err := d.remote.RegisterLicense(licName(i), lease.CountBased, licTotal(i)); err != nil {
			t.Fatalf("RegisterLicense %d: %v", i, err)
		}
		init, err := d.remote.InitClient("", attest.Quote{}, nil)
		if err != nil {
			t.Fatalf("InitClient %d: %v", i, err)
		}
		slids[i] = init.SLID
	}

	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	// Default pool size 1: every worker below pipelines on the same
	// connection, so the demux reader is the only thing keeping replies
	// straight.

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lic := licName(i)
			var avail int64 // units renewed but not yet consumed by this worker
			for j := 0; j < iters; j++ {
				switch j % 4 {
				case 0:
					info, err := client.LicenseInfo(lic)
					if err != nil {
						t.Errorf("worker %d LicenseInfo: %v", i, err)
						return
					}
					if info.ID != lic || info.TotalGCL != licTotal(i) {
						t.Errorf("worker %d got license %q total %d, want %q total %d — reply misdelivered",
							i, info.ID, info.TotalGCL, lic, licTotal(i))
						return
					}
				case 1:
					g, err := client.RenewLease(slids[i], lic)
					if err != nil {
						t.Errorf("worker %d RenewLease: %v", i, err)
						return
					}
					if g.Units < 1 || g.GCL.Counter != g.Units {
						t.Errorf("worker %d grant = %+v — reply misdelivered or corrupt", i, g)
						return
					}
					avail += g.Units
				case 2:
					if avail < 1 {
						continue
					}
					if err := client.ConsumeReport(slids[i], lic, 1); err != nil {
						t.Errorf("worker %d ConsumeReport: %v", i, err)
						return
					}
					avail--
				case 3:
					// An error reply must come back to the waiter that
					// earned it, not to an innocent bystander.
					if _, err := client.LicenseInfo(fmt.Sprintf("ghost-%02d", i)); !errors.Is(err, ErrRemote) {
						t.Errorf("worker %d ghost lookup: err = %v, want ErrRemote", i, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	if got := client.wrongID.Load(); got != 0 {
		t.Errorf("wrong-ID responses = %d, want 0 (server echoed a bad correlation ID)", got)
	}
	client.mu.Lock()
	conns := len(client.conns)
	client.mu.Unlock()
	if conns != 1 {
		t.Errorf("connections used = %d, want 1 (workload escaped the pipelined conn)", conns)
	}
	reorders := 0
	for _, ev := range dir.Trace() {
		if ev.Kind == chaos.Reorder {
			reorders++
		}
	}
	if reorders == 0 {
		t.Fatal("no reorder faults fired — the stress ran without out-of-order delivery")
	}
	t.Logf("demux survived %d reordered replies across %d RPCs", reorders, workers*iters)
}

// TestPipelinedManyInFlightOneConn proves requests genuinely overlap on a
// single connection: the server's pre-dispatch hook holds every
// license-info handler until all of them have arrived, which can only
// happen if the client pipelines instead of serializing round trips.
func TestPipelinedManyInFlightOneConn(t *testing.T) {
	const inFlight = 8
	var (
		mu        sync.Mutex
		cur, peak int
	)
	release := make(chan struct{})
	d := startPipeDeployment(t, nil)
	d.server.preDispatch = func(env Envelope) {
		if env.Type != TypeLicenseInfo {
			return
		}
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		arrived := cur
		mu.Unlock()
		if arrived == inFlight {
			close(release)
		}
		select {
		case <-release:
		case <-time.After(5 * time.Second):
		}
	}
	if err := d.remote.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}

	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	errs := make([]error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.LicenseInfo("lic")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if peak != inFlight {
		t.Fatalf("peak concurrent envelopes on one conn = %d, want %d", peak, inFlight)
	}
}

// TestPipelinedWrongIDRejected pins the demux's misdelivery defense: a
// reply carrying an unknown correlation ID is counted and dropped, and the
// waiter still receives the correctly-correlated reply that follows.
func TestPipelinedWrongIDRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			env, err := ReadMessage(conn)
			if err != nil {
				return
			}
			// First a poisoned reply under a bogus ID, then the real one.
			// Delivering the poison to the waiter would hand it a license
			// that does not exist.
			_ = WriteMessageID(conn, TypeLicenseInfo, env.ID+1000,
				LicenseInfoResponse{ID: "poison", TotalGCL: 666}, nil)
			_ = WriteMessageID(conn, TypeLicenseInfo, env.ID,
				LicenseInfoResponse{ID: "real", TotalGCL: 7}, nil)
		}
	}()

	client, err := Dial(ln.Addr().String(), ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	info, err := client.LicenseInfo("real")
	if err != nil {
		t.Fatalf("LicenseInfo: %v", err)
	}
	if info.ID != "real" || info.TotalGCL != 7 {
		t.Fatalf("waiter got %+v — the poisoned reply was misdelivered", info)
	}
	if got := client.wrongID.Load(); got != 1 {
		t.Fatalf("wrong-ID responses = %d, want 1", got)
	}
}
