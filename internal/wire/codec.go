package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Zero-allocation envelope encoding for the hot path. The envelope wrapper
// — type tag, correlation ID, trace context, framing header — is appended
// by hand into a pooled buffer and written with a single Write, so a
// renewal round trip allocates nothing for its framing. The output is
// byte-compatible with encoding/json's encoding of Envelope (same field
// order, same omitempty behavior, same string escaping including HTML
// escapes and invalid-UTF-8 replacement); FuzzEnvelope pins that
// equivalence.
//
// Hot payload types (renew, consume, error/ok) are appended by hand too;
// everything else falls back to one json.Marshal for the payload only.

// framePool recycles frame-encoding buffers across RPCs. Buffers above
// 64 KiB are dropped instead of pooled so one huge replication batch does
// not pin its footprint forever.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

const framePoolMaxCap = 64 << 10

// writeMessageFast encodes one framed envelope into a pooled buffer —
// 4-byte big-endian length header plus the JSON body — and writes it with
// one Write call.
func writeMessageFast(w io.Writer, msgType string, id uint64, payload any, tc *TraceContext) error {
	bp := framePool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, 0, 0, 0, 0) // header placeholder, patched below
	buf = appendEnvelopePrefix(buf, msgType, id, tc)
	if payload != nil {
		buf = append(buf, `,"payload":`...)
		var ok bool
		buf, ok = appendPayload(buf, payload)
		if !ok {
			raw, err := json.Marshal(payload)
			if err != nil {
				putFrameBuf(bp, buf)
				return fmt.Errorf("wire: marshaling payload: %w", err)
			}
			buf = append(buf, raw...)
		}
	}
	buf = append(buf, '}')
	body := len(buf) - 4
	if body > MaxMessageSize {
		putFrameBuf(bp, buf)
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", body)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	_, err := w.Write(buf)
	putFrameBuf(bp, buf)
	if err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}

func putFrameBuf(bp *[]byte, buf []byte) {
	if cap(buf) > framePoolMaxCap {
		return
	}
	*bp = buf
	framePool.Put(bp)
}

// appendEnvelope appends the JSON encoding of env, byte-compatible with
// json.Marshal(env) for any envelope whose Payload is compact JSON (as
// every payload this package produces is).
func appendEnvelope(dst []byte, env *Envelope) []byte {
	dst = appendEnvelopePrefix(dst, env.Type, env.ID, env.Trace)
	if len(env.Payload) != 0 {
		dst = append(dst, `,"payload":`...)
		dst = append(dst, env.Payload...)
	}
	return append(dst, '}')
}

// appendEnvelopePrefix appends the envelope object up to (not including)
// the payload field and closing brace: {"type":...,"id":...,"trace":{...}
func appendEnvelopePrefix(dst []byte, msgType string, id uint64, tc *TraceContext) []byte {
	dst = append(dst, `{"type":`...)
	dst = appendJSONString(dst, msgType)
	if id != 0 {
		dst = append(dst, `,"id":`...)
		dst = strconv.AppendUint(dst, id, 10)
	}
	if tc != nil {
		dst = append(dst, `,"trace":{"trace_id":`...)
		dst = appendJSONString(dst, tc.TraceID)
		if tc.SpanID != 0 {
			dst = append(dst, `,"span_id":`...)
			dst = strconv.AppendUint(dst, tc.SpanID, 10)
		}
		dst = append(dst, '}')
	}
	return dst
}

// appendPayload appends the JSON encoding of the hand-coded hot-path
// payload types. ok=false means the caller must fall back to json.Marshal.
func appendPayload(dst []byte, payload any) (_ []byte, ok bool) {
	switch p := payload.(type) {
	case RenewRequest:
		dst = append(dst, `{"slid":`...)
		dst = appendJSONString(dst, p.SLID)
		dst = append(dst, `,"license":`...)
		dst = appendJSONString(dst, p.License)
		return append(dst, '}'), true
	case RenewResponse:
		dst = append(dst, `{"units":`...)
		dst = strconv.AppendInt(dst, p.Units, 10)
		dst = append(dst, `,"kind":`...)
		dst = strconv.AppendUint(dst, uint64(p.Kind), 10)
		dst = append(dst, `,"counter":`...)
		dst = strconv.AppendInt(dst, p.Counter, 10)
		if p.IntervalNS != 0 {
			dst = append(dst, `,"interval_ns":`...)
			dst = strconv.AppendInt(dst, p.IntervalNS, 10)
		}
		return append(dst, '}'), true
	case ConsumeRequest:
		dst = append(dst, `{"slid":`...)
		dst = appendJSONString(dst, p.SLID)
		dst = append(dst, `,"license":`...)
		dst = appendJSONString(dst, p.License)
		dst = append(dst, `,"units":`...)
		dst = strconv.AppendInt(dst, p.Units, 10)
		return append(dst, '}'), true
	case ErrorResponse:
		dst = append(dst, `{"message":`...)
		dst = appendJSONString(dst, p.Message)
		return append(dst, '}'), true
	}
	return dst, false
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, matching encoding/json's
// escaping exactly: ", \, and control characters escaped (\b \f \n \r \t
// by name, the rest as \u00xx), HTML-sensitive <, >, & as \u00xx escapes,
// invalid UTF-8 bytes replaced with �, and U+2028/U+2029 escaped for
// JavaScript embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i++
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
