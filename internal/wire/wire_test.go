package wire

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeRenew, RenewRequest{SLID: "s", License: "l"}); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if env.Type != TypeRenew {
		t.Fatalf("type = %q", env.Type)
	}
	var req RenewRequest
	if err := DecodePayload(env, &req); err != nil {
		t.Fatalf("DecodePayload: %v", err)
	}
	if req.SLID != "s" || req.License != "l" {
		t.Fatalf("payload = %+v", req)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// Zero size.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-size frame accepted")
	}
	// Oversized.
	if _, err := ReadMessage(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated body.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 10, 'x'})); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Invalid JSON.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("not")
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestDecodePayloadEmpty(t *testing.T) {
	var out RenewRequest
	if err := DecodePayload(Envelope{Type: TypeRenew}, &out); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// testDeployment spins up a real TCP server around a fresh SL-Remote.
type testDeployment struct {
	remote  *slremote.Server
	service *attest.Service
	server  *Server
	addr    string
	done    chan struct{}
}

func startDeployment(t *testing.T) *testDeployment {
	t.Helper()
	service := attest.NewService()
	remote, err := slremote.NewServer(slremote.DefaultConfig(), service)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv, err := NewServer(remote, t.Logf, ratls.Insecure())
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	d := &testDeployment{
		remote:  remote,
		service: service,
		server:  srv,
		addr:    ln.Addr().String(),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-d.done
	})
	return d
}

func TestServerRejectsNil(t *testing.T) {
	if _, err := NewServer(nil, nil, ratls.Insecure()); err == nil {
		t.Fatal("nil remote accepted")
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("slremote.NewServer: %v", err)
	}
	if _, err := NewServer(remote, nil, nil); !errors.Is(err, ErrNilChannelConfig) {
		t.Fatalf("nil channel config: got %v, want ErrNilChannelConfig", err)
	}
	if _, err := Dial("127.0.0.1:0", nil); !errors.Is(err, ErrNilChannelConfig) {
		t.Fatalf("nil channel config dial: got %v, want ErrNilChannelConfig", err)
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	d := startDeployment(t)

	// Client machine + platform, trusted by the server's service.
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "client", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("client", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	d.service.RegisterPlatform(plat)
	probe, err := m.CreateEnclave("probe", sllocal.EnclaveCodeIdentity, 0)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	d.service.TrustMeasurement(probe.Measurement())
	probe.Destroy()

	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	if err := client.RegisterLicense("lic", uint8(lease.CountBased), 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	// Duplicate registration surfaces the remote error.
	if err := client.RegisterLicense("lic", uint8(lease.CountBased), 10_000); !errors.Is(err, ErrRemote) {
		t.Fatalf("duplicate register: %v", err)
	}

	// SL-Local runs against the TCP client unchanged.
	state := &sllocal.UntrustedState{}
	svc, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: client, State: state,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app, err := m.CreateEnclave("app", []byte("app"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	for i := 0; i < 30; i++ {
		if _, err := svc.RequestToken(app, "lic"); err != nil {
			t.Fatalf("RequestToken %d: %v", i, err)
		}
	}
	info, err := client.LicenseInfo("lic")
	if err != nil {
		t.Fatalf("LicenseInfo: %v", err)
	}
	if info.Remaining >= info.TotalGCL {
		t.Fatalf("no units granted: %+v", info)
	}

	// Graceful shutdown escrows over the wire; restart restores.
	if err := svc.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	svc2, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: client, State: state,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc2.Init(); err != nil {
		t.Fatalf("re-Init: %v", err)
	}
	if _, err := svc2.RequestToken(app, "lic"); err != nil {
		t.Fatalf("post-restore RequestToken: %v", err)
	}
	if got := svc2.Stats().Renewals; got != 0 {
		t.Fatalf("renewals after restore over TCP = %d, want 0", got)
	}

	// Admin paths.
	if err := client.SetProfile(svc2.SLID(), 0.95, 0.8, 1.0); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	if err := client.ReportCrash(svc2.SLID()); err != nil {
		t.Fatalf("ReportCrash: %v", err)
	}
	if err := client.ReportCrash("ghost"); !errors.Is(err, ErrRemote) {
		t.Fatalf("ReportCrash ghost: %v", err)
	}
	if _, err := client.LicenseInfo("ghost"); !errors.Is(err, ErrRemote) {
		t.Fatalf("LicenseInfo ghost: %v", err)
	}
}

func TestUnattestedClientRejected(t *testing.T) {
	d := startDeployment(t)
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "pirate", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("pirate", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	// Platform deliberately NOT registered with the service.
	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	svc, err := sllocal.New(sllocal.Config{}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: client,
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	if err := svc.Init(); err == nil {
		t.Fatal("unattested SL-Local initialized against the server")
	}
}

func TestUnknownMessageType(t *testing.T) {
	d := startDeployment(t)
	conn, err := net.Dial("tcp", d.addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, "bogus", nil); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	env, err := ReadMessage(conn)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if env.Type != TypeError {
		t.Fatalf("reply type = %q", env.Type)
	}
	if !strings.Contains(RemoteErr(env).Error(), "unknown message type") {
		t.Fatalf("error = %v", RemoteErr(env))
	}
}

func TestQuoteCodecRoundTrip(t *testing.T) {
	m, err := sgx.NewMachine(sgx.MachineConfig{EPCBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	plat, err := attest.NewPlatform("p", m)
	if err != nil {
		t.Fatal(err)
	}
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := plat.CreateQuote(e, []byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	// The envelope carries attest.Quote directly; framing it and decoding
	// it back must reproduce the quote bit for bit.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeInit, InitRequest{SLID: "s", Quote: q}); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	env, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	var req InitRequest
	if err := DecodePayload(env, &req); err != nil {
		t.Fatalf("DecodePayload: %v", err)
	}
	if req.Quote != q {
		t.Fatal("quote round trip mismatch")
	}
	// A tampered frame with wrong field sizes is rejected by the quote
	// codec, not silently truncated.
	mangled := bytes.Replace(env.Payload, []byte(`"source":"`), []byte(`"source":"AAAA`), 1)
	var bad InitRequest
	if err := DecodePayload(Envelope{Type: TypeInit, Payload: mangled}, &bad); !errors.Is(err, attest.ErrMalformedQuote) {
		t.Fatalf("mangled quote: got %v, want ErrMalformedQuote", err)
	}
}

func TestEscrowKeyCodec(t *testing.T) {
	d := startDeployment(t)
	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	key, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Escrow for an unknown client must surface the remote error.
	if err := client.EscrowRootKey("ghost", key); !errors.Is(err, ErrRemote) {
		t.Fatalf("escrow ghost: %v", err)
	}
}
