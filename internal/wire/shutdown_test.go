package wire

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/ratls"
)

func TestShutdownDrainsIdleConnections(t *testing.T) {
	reg := obs.NewRegistry()
	d := startInstrumentedDeployment(t, reg, nil, nil)

	// Two idle clients: connected, no envelope in flight. Each registers a
	// license so the connection is proven live before the drain starts.
	for i := 0; i < 2; i++ {
		c, err := Dial(d.addr, ratls.Insecure())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		if err := c.RegisterLicense("warm-"+string(rune('a'+i)), uint8(lease.CountBased), 10); err != nil {
			t.Fatalf("RegisterLicense: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.server.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-d.done

	if got := d.server.drained.Load(); got != 2 {
		t.Errorf("drained = %d, want 2", got)
	}
	if got := d.server.aborted.Load(); got != 0 {
		t.Errorf("aborted = %d, want 0", got)
	}
	snap := reg.Snapshot()
	if v := snap[obs.Key("wire_server_shutdown_drained_total", nil)]; v != 2 {
		t.Errorf("wire_server_shutdown_drained_total = %v, want 2", v)
	}
}

func TestShutdownWaitsForInFlightEnvelope(t *testing.T) {
	release := make(chan struct{})
	var entered sync.Once
	inHandler := make(chan struct{})
	d := startInstrumentedDeployment(t, obs.NewRegistry(), nil, func(Envelope) {
		entered.Do(func() { close(inHandler) })
		<-release
	})

	c, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// Fire a request that blocks inside the handler, then shut down while
	// it is in flight.
	reqDone := make(chan error, 1)
	go func() { reqDone <- c.RegisterLicense("slow", uint8(lease.CountBased), 10) }()
	<-inHandler

	shutDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutDone <- d.server.Shutdown(ctx) }()

	// The drain must not finish while the envelope is still in the handler.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned %v with an envelope in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-reqDone; err != nil {
		t.Errorf("in-flight request failed across drain: %v", err)
	}
	if got := d.server.drained.Load(); got != 1 {
		t.Errorf("drained = %d, want 1", got)
	}
	if got := d.server.aborted.Load(); got != 0 {
		t.Errorf("aborted = %d, want 0", got)
	}
}

func TestShutdownDeadlineAbortsStuckConnection(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var entered sync.Once
	inHandler := make(chan struct{})
	d := startInstrumentedDeployment(t, obs.NewRegistry(), nil, func(Envelope) {
		entered.Do(func() { close(inHandler) })
		<-release
	})

	c, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	go func() { _ = c.RegisterLicense("stuck", uint8(lease.CountBased), 10) }()
	<-inHandler

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = d.server.Shutdown(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if got := d.server.aborted.Load(); got != 1 {
		t.Errorf("aborted = %d, want 1", got)
	}
}

func TestShutdownRefusesNewConnections(t *testing.T) {
	d := startInstrumentedDeployment(t, obs.NewRegistry(), nil, nil)
	// One round trip first, so the serve loop is provably running before
	// the drain starts.
	c, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := c.RegisterLicense("warm", uint8(lease.CountBased), 10); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.server.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", d.addr, time.Second); err == nil {
		t.Error("dial succeeded after Shutdown")
	}
	// Second Shutdown and Close after Shutdown are no-ops.
	if err := d.server.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
	d.server.Close()
}
