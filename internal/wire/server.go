package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/slremote"
	"repro/internal/store"
)

// Server exposes an slremote.Server over TCP. Each connection is handled
// by its own goroutine. Envelopes carrying a correlation ID are dispatched
// concurrently — one goroutine per in-flight envelope, replies serialized
// onto the connection with the request's ID echoed so a pipelining client
// can match them; envelopes without an ID (legacy hand-rolled peers) keep
// the sequential one-at-a-time protocol.
type Server struct {
	remote *slremote.Server
	logf   func(format string, args ...any)
	rc     *ratls.Config

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*connState
	closed   bool
	draining bool // Shutdown in progress: finish in-flight envelopes, accept no new ones
	wg       sync.WaitGroup

	panics   atomic.Int64 // recovered handler panics (always counted)
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
	drained  atomic.Int64 // connections that shut down after finishing in-flight work
	aborted  atomic.Int64 // connections force-closed at the Shutdown deadline
	metrics  atomic.Pointer[serverMetrics]
	flight   atomic.Pointer[flight.Recorder]

	// preDispatch, when set, runs before each dispatch (tests inject
	// handler panics through it).
	preDispatch func(Envelope)

	// gate, when set, is consulted before every license-scoped request;
	// requests for hash ranges this server does not own are answered with
	// TypeNotLeader instead of being served. Guarded by mu.
	gate ShardGate
	// replSource, when set, serves TypeReplPull from the server's WAL.
	// Guarded by mu.
	replSource ReplSource
	// obsSource, when set, serves TypeObsPull (attested-channel scraping).
	// Guarded by mu.
	obsSource ObsSource
}

// ShardGate decides license ownership for a sharded deployment: it returns
// the shard's current leader address and directory epoch, and whether THIS
// server is that leader (owned). A nil gate means the server owns
// everything (the single-instance deployment).
type ShardGate func(licenseID string) (leader string, epoch uint64, owned bool)

// ReplSource is the WAL tail a server exposes to its follower; a
// *store.Store satisfies it.
type ReplSource interface {
	TailSince(gen uint64, offset int64, maxBytes int) (store.TailBatch, error)
}

// DefaultReplBatchBytes caps one replication batch's raw record bytes when
// the puller does not say: comfortably under MaxMessageSize even after
// JSON/base64 expansion.
const DefaultReplBatchBytes = 4 << 20

// SetShardGate installs the cluster router's ownership check. Pass nil to
// own every license again (e.g. after the last shard merges).
func (s *Server) SetShardGate(g ShardGate) {
	s.mu.Lock()
	s.gate = g
	s.mu.Unlock()
}

// SetReplSource exposes the server's WAL to follower pulls.
func (s *Server) SetReplSource(src ReplSource) {
	s.mu.Lock()
	s.replSource = src
	s.mu.Unlock()
}

// ObsSource builds the server's observability snapshot for one TypeObsPull
// request: the caller wires a closure over its registry, tracer, and flight
// recorder.
type ObsSource func(traceFilter string) ObsPullResponse

// SetObsSource enables attested-channel scraping of this server's
// observability state. Pass nil to disable.
func (s *Server) SetObsSource(src ObsSource) {
	s.mu.Lock()
	s.obsSource = src
	s.mu.Unlock()
}

// SetFlightRecorder wires the black-box flight recorder; the server emits
// routing and drain events into it. A nil recorder (the default) is free.
func (s *Server) SetFlightRecorder(rec *flight.Recorder) {
	s.flight.Store(rec)
}

func (s *Server) shardGate() ShardGate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gate
}

func (s *Server) replSrc() ReplSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replSource
}

func (s *Server) obsSrc() ObsSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obsSource
}

// NewServer wraps a license server for network serving. logf may be nil
// (silent). rc selects the channel every accepted connection must speak:
// an attested ratls config for production, ratls.Insecure() for
// plaintext paths.
func NewServer(remote *slremote.Server, logf func(string, ...any), rc *ratls.Config) (*Server, error) {
	if remote == nil {
		return nil, errors.New("wire: nil SL-Remote")
	}
	if rc == nil {
		return nil, ErrNilChannelConfig
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{remote: remote, logf: logf, rc: rc, conns: make(map[net.Conn]*connState)}, nil
}

// connState tracks what Shutdown needs to know about one connection: how
// many envelopes are in flight (pipelined requests dispatch concurrently),
// and whether the connection was already counted toward the
// drained/aborted totals.
type connState struct {
	busy    int
	counted bool
}

// connWriter serializes reply frames from concurrent handler goroutines
// onto one connection, echoing each request's correlation ID so the
// client's demux reader can deliver the reply to the right waiter.
// Replies coalesce: each frame lands in a buffered writer, and only the
// last writer in a burst pays the Write syscall (pend tracks queued
// writers; whoever decrements it to zero flushes). A lone reply flushes
// immediately, so the sequential protocol's latency is unchanged.
type connWriter struct {
	pend atomic.Int64 // writers queued for mu; the one that drops it to 0 flushes
	mu   sync.Mutex
	bw   *bufio.Writer // guardedby: mu
}

func newConnWriter(w io.Writer) *connWriter {
	return &connWriter{bw: bufio.NewWriterSize(w, 32<<10)}
}

func (cw *connWriter) reply(id uint64, msgType string, payload any) error {
	cw.pend.Add(1)
	cw.mu.Lock()
	defer cw.mu.Unlock()
	err := WriteMessageID(cw.bw, msgType, id, payload, nil)
	if cw.pend.Add(-1) == 0 {
		if ferr := cw.bw.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// Serve accepts connections until the listener is closed (by Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wire: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = &connState{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes all connections immediately (in-flight
// envelopes are cut off), and waits for handlers. Prefer Shutdown for
// graceful termination.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.listener != nil {
		_ = s.listener.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Shutdown drains the server: it stops accepting, lets every in-flight
// envelope finish and be answered, then closes the connections. Idle
// connections close immediately. If ctx expires first, the stragglers are
// force-closed and ctx's error is returned. Each connection is counted
// exactly once as drained (finished cleanly) or aborted (cut off at the
// deadline) — see wire_server_shutdown_{drained,aborted}_total.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.draining = true
	s.flight.Load().Emit("wire.drain",
		flight.KV{K: "open_conns", V: strconv.Itoa(len(s.conns))})
	if s.listener != nil {
		_ = s.listener.Close()
	}
	for conn, cs := range s.conns {
		if cs.busy == 0 {
			// Nothing in flight: the blocked ReadMessage fails with
			// net.ErrClosed and the handler exits cleanly.
			s.countLocked(cs, false)
			_ = conn.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close the stragglers and return without waiting for their
		// handlers (net/http.Shutdown semantics): a handler wedged in
		// application code would otherwise block shutdown forever.
		s.mu.Lock()
		for conn, cs := range s.conns {
			s.countLocked(cs, true)
			_ = conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// countLocked tallies a connection's shutdown outcome exactly once.
func (s *Server) countLocked(cs *connState, abortedAtDeadline bool) {
	if cs.counted {
		return
	}
	cs.counted = true
	if abortedAtDeadline {
		s.aborted.Add(1)
	} else {
		s.drained.Add(1)
	}
}

// beginEnvelope counts an envelope in flight on the connection; it
// refuses new work once a drain started (the envelope read raced
// Shutdown's idle sweep).
func (s *Server) beginEnvelope(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.conns[conn]
	if !ok || s.draining {
		return false
	}
	cs.busy++
	return true
}

// endEnvelope marks one envelope done and reports whether the connection
// should now close because a drain is in progress and nothing else is in
// flight.
func (s *Server) endEnvelope(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.conns[conn]
	if !ok {
		return true
	}
	cs.busy--
	if s.draining && cs.busy == 0 {
		s.countLocked(cs, false)
		return true
	}
	return false
}

// handle speaks the channel handshake and then the envelope protocol on
// one connection. The raw conn stays the key for the shutdown
// bookkeeping (Shutdown and Close close raw conns, which unblocks any
// read or handshake on the wrapped one); all I/O goes through the
// channel conn wc.
func (s *Server) handle(conn net.Conn) {
	if m := s.metrics.Load(); m != nil {
		m.conns.Add(1)
		defer m.conns.Add(-1)
	}
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	wc, err := s.rc.Server(conn)
	if err != nil {
		// Handshake failures are counted on the ratls config
		// (ratls_handshake_failures_total); the client retries with its
		// bounded dial backoff.
		s.logf("wire: handshake with %s: %v", conn.RemoteAddr(), err)
		return
	}
	cw := newConnWriter(countWriter{wc, &s.bytesOut})
	// Buffered reads: ReadMessage costs two Reads per frame (header, body);
	// over a pipelined connection many frames arrive back-to-back, so a
	// read buffer turns 2N syscalls into ~N/batch.
	br := bufio.NewReaderSize(countReader{wc, &s.bytesIn}, 32<<10)
	for {
		env, err := ReadMessage(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if !s.beginEnvelope(conn) {
			return
		}
		if env.ID != 0 {
			// Pipelined request: dispatch concurrently and go straight back
			// to reading. The reply carries the correlation ID, so ordering
			// across in-flight envelopes is the client's problem to demux.
			s.wg.Add(1)
			go func(env Envelope) {
				defer s.wg.Done()
				herr := s.handleEnvelope(wc, cw, env)
				stop := s.endEnvelope(conn)
				if herr != nil {
					s.logf("wire: reply to %s: %v", conn.RemoteAddr(), herr)
				}
				if herr != nil || stop {
					// Closing the raw conn unblocks the read loop, which
					// owns the connection teardown.
					_ = conn.Close()
				}
			}(env)
			continue
		}
		err = s.handleEnvelope(wc, cw, env)
		stop := s.endEnvelope(conn)
		if err != nil {
			s.logf("wire: reply to %s: %v", conn.RemoteAddr(), err)
			return
		}
		if stop {
			return
		}
	}
}

// handleEnvelope dispatches one request with panic isolation: a handler
// panic is counted, logged, and answered with an error envelope instead of
// killing the handler goroutine silently. The returned error is a
// transport failure (the connection is then dropped).
func (s *Server) handleEnvelope(conn net.Conn, cw *connWriter, env Envelope) (err error) {
	m := s.metrics.Load()
	var tr *obs.Tracer
	if m != nil {
		tr = m.tracer
	}
	span := tr.StartLinked("rpc."+rpcLabel(env.Type), extractSpanContext(env))
	span.Annotate("remote", conn.RemoteAddr().String())
	start := time.Now()
	// done finishes the handler span and records the RPC metrics exactly
	// once: the normal path and the panic path both call it, and a panic
	// raised after the normal dispatch already completed (e.g. while
	// writing the reply) must not end the span twice.
	finished := false
	done := func(handlerErr error) {
		if finished {
			return
		}
		finished = true
		if m != nil {
			rm := m.forType(rpcLabel(env.Type))
			rm.rpcs.Inc()
			rm.latency.Observe(time.Since(start).Seconds())
		}
		span.End(handlerErr)
	}
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.logf("wire: panic handling %q from %s: %v", env.Type, conn.RemoteAddr(), r)
			done(fmt.Errorf("panic: %v", r))
			err = cw.reply(env.ID, TypeError,
				ErrorResponse{Message: fmt.Sprintf("internal error handling %q", env.Type)})
		}
	}()
	if s.preDispatch != nil {
		s.preDispatch(env)
	}
	err = s.dispatch(conn, cw, env, span)
	done(err)
	return err
}

// extractSpanContext recovers the caller's span context from an envelope's
// trace field. A missing or malformed field yields the zero context (the
// handler span then starts a fresh trace).
func extractSpanContext(env Envelope) obs.SpanContext {
	if env.Trace == nil {
		return obs.SpanContext{}
	}
	id, err := obs.ParseTraceID(env.Trace.TraceID)
	if err != nil {
		return obs.SpanContext{}
	}
	return obs.SpanContext{Trace: id, Span: env.Trace.SpanID}
}

func (s *Server) dispatch(conn net.Conn, cw *connWriter, env Envelope, span *obs.Span) error {
	// reply frames one response, serialized against concurrent handlers on
	// the same connection and carrying the request's correlation ID.
	reply := func(msgType string, payload any) error {
		return cw.reply(env.ID, msgType, payload)
	}
	fail := func(err error) error {
		if m := s.metrics.Load(); m != nil {
			m.forType(rpcLabel(env.Type)).errors.Inc()
		}
		return reply(TypeError, ErrorResponse{Message: err.Error()})
	}
	// redirect answers a license-scoped request with the owning shard's
	// leader when this server's gate disowns the license. A not-leader
	// reply is routing, not failure: it is not counted as an RPC error.
	redirect := func(license string) (bool, error) {
		g := s.shardGate()
		if g == nil {
			return false, nil
		}
		leader, epoch, owned := g(license)
		if owned {
			return false, nil
		}
		span.Annotate("redirect", leader)
		s.flight.Load().Emit("wire.redirect",
			flight.KV{K: "license", V: license},
			flight.KV{K: "leader", V: leader},
			flight.KV{K: "epoch", V: strconv.FormatUint(epoch, 10)})
		return true, reply(TypeNotLeader, NotLeaderResponse{License: license, Leader: leader, Epoch: epoch})
	}
	switch env.Type {
	case TypeInit:
		var req InitRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		child := span.Child("slremote.init")
		child.Annotate("slid", req.SLID)
		res, err := s.remote.InitClient(req.SLID, req.Quote, nil)
		child.End(err)
		if err != nil {
			return fail(err)
		}
		resp := InitResponse{SLID: res.SLID, HasOBK: res.HasOBK}
		if res.HasOBK {
			// The OBK leaves the server only through the attested (or
			// explicitly insecure) channel; SealForChannel enforces that
			// at runtime.
			sealed, err := ratls.SealForChannel(res.OBK, conn)
			if err != nil {
				return fail(err)
			}
			resp.OBK = sealed
		}
		return reply(TypeInit, resp)

	case TypeRenew:
		var req RenewRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		if hit, werr := redirect(req.License); hit {
			return werr
		}
		child := span.Child("slremote.renew")
		child.Annotate("slid", req.SLID)
		child.Annotate("license", req.License)
		grant, err := s.remote.RenewLease(req.SLID, req.License)
		if err != nil {
			child.End(err)
			return fail(err)
		}
		child.Annotate("units", strconv.FormatInt(grant.Units, 10))
		child.End(nil)
		return reply(TypeRenew, RenewResponse{
			Units:      grant.Units,
			Kind:       uint8(grant.GCL.Kind),
			Counter:    grant.GCL.Counter,
			IntervalNS: int64(grant.GCL.Interval),
		})

	case TypeEscrow:
		var req EscrowRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		key, err := seccrypto.KeyFromBytes(req.Key)
		if err != nil {
			return fail(err)
		}
		child := span.Child("slremote.escrow")
		child.Annotate("slid", req.SLID)
		if err := s.remote.EscrowRootKey(req.SLID, key); err != nil {
			child.End(err)
			return fail(err)
		}
		child.End(nil)
		return reply(TypeOK, nil)

	case TypeRegisterLicense:
		var req RegisterLicenseRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		if hit, werr := redirect(req.ID); hit {
			return werr
		}
		if err := s.remote.RegisterLicense(req.ID, lease.Kind(req.Kind), req.TotalGCL); err != nil {
			return fail(err)
		}
		return reply(TypeOK, nil)

	case TypeReportCrash:
		var req ReportCrashRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		if err := s.remote.ReportCrash(req.SLID); err != nil {
			return fail(err)
		}
		return reply(TypeOK, nil)

	case TypeSetProfile:
		var req SetProfileRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		if err := s.remote.SetClientProfile(req.SLID, req.Health, req.Reliability, req.Weight); err != nil {
			return fail(err)
		}
		return reply(TypeOK, nil)

	case TypeConsume:
		var req ConsumeRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		if hit, werr := redirect(req.License); hit {
			return werr
		}
		if err := s.remote.ConsumeReport(req.SLID, req.License, req.Units); err != nil {
			return fail(err)
		}
		return reply(TypeOK, nil)

	case TypeLicenseInfo:
		var req LicenseInfoRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		if hit, werr := redirect(req.ID); hit {
			return werr
		}
		lic, err := s.remote.License(req.ID)
		if err != nil {
			return fail(err)
		}
		return reply(TypeLicenseInfo, LicenseInfoResponse{
			ID:        lic.ID,
			Kind:      uint8(lic.Kind),
			TotalGCL:  lic.TotalGCL,
			Remaining: lic.Remaining,
			Revoked:   lic.Revoked,
			Lost:      lic.Lost,
			Consumed:  lic.Consumed,
		})

	case TypeReplPull:
		src := s.replSrc()
		if src == nil {
			return fail(errors.New("replication not enabled on this server"))
		}
		var req ReplPullRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		maxBytes := req.MaxBytes
		if maxBytes <= 0 || maxBytes > DefaultReplBatchBytes {
			maxBytes = DefaultReplBatchBytes
		}
		child := span.Child("store.tail")
		b, err := src.TailSince(req.Gen, req.Offset, maxBytes)
		child.Annotate("records", strconv.Itoa(len(b.Records)))
		child.End(err)
		if err != nil {
			return fail(err)
		}
		return reply(TypeReplBatch, ReplBatchResponse{
			Gen:        b.Gen,
			Rebase:     b.Rebase,
			Snapshot:   b.Snapshot,
			Records:    b.Records,
			NextOffset: b.NextOffset,
			Tip:        b.Tip,
		})

	case TypeObsPull:
		src := s.obsSrc()
		if src == nil {
			return fail(errors.New("observability pull not enabled on this server"))
		}
		var req ObsPullRequest
		if err := DecodePayload(env, &req); err != nil {
			return fail(err)
		}
		return reply(TypeObsPull, src(req.Trace))

	default:
		return fail(fmt.Errorf("unknown message type %q", env.Type))
	}
}

// ListenAndServe is a convenience for the daemon binary: listen on addr
// and serve until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.logf("sl-remote: listening on %s", ln.Addr())
	return s.Serve(ln)
}
