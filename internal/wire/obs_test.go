package wire

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/slremote"
)

// startInstrumentedDeployment is startDeployment plus obs instrumentation
// and an optional preDispatch hook, both installed before the serve
// goroutine starts so tests stay race-clean.
func startInstrumentedDeployment(t *testing.T, reg *obs.Registry, tr *obs.Tracer, preDispatch func(Envelope)) *testDeployment {
	t.Helper()
	service := attest.NewService()
	remote, err := slremote.NewServer(slremote.DefaultConfig(), service)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv, err := NewServer(remote, t.Logf, ratls.Insecure())
	if err != nil {
		t.Fatalf("wire.NewServer: %v", err)
	}
	srv.ExposeMetrics(reg, tr)
	srv.preDispatch = preDispatch
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	d := &testDeployment{
		remote:  remote,
		service: service,
		server:  srv,
		addr:    ln.Addr().String(),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-d.done
	})
	return d
}

func TestWireMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	d := startInstrumentedDeployment(t, reg, tr, nil)

	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	client.ExposeMetrics(reg, nil)

	if err := client.RegisterLicense("lic", uint8(lease.CountBased), 100); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	// Duplicate registration is answered with an error envelope: a server-side
	// RPC error, but not a client transport error.
	if err := client.RegisterLicense("lic", uint8(lease.CountBased), 100); !errors.Is(err, ErrRemote) {
		t.Fatalf("duplicate register: %v", err)
	}
	if _, err := client.LicenseInfo("lic"); err != nil {
		t.Fatalf("LicenseInfo: %v", err)
	}

	snap := reg.Snapshot()
	reglbl := map[string]string{"type": TypeRegisterLicense}
	infolbl := map[string]string{"type": TypeLicenseInfo}
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"wire_client_rpcs_total", reglbl, 2},
		{"wire_client_rpcs_total", infolbl, 1},
		{"wire_client_rpc_latency_seconds_count", infolbl, 1},
		{"wire_client_rpc_errors_total", infolbl, 0},
		{"wire_server_rpcs_total", reglbl, 2},
		{"wire_server_rpcs_total", infolbl, 1},
		{"wire_server_rpc_errors_total", reglbl, 1},
		{"wire_server_rpc_latency_seconds_count", reglbl, 2},
	}
	for _, c := range checks {
		if got := snap.Get(c.name, c.labels); got != c.want {
			t.Errorf("%s = %v, want %v", obs.Key(c.name, c.labels), got, c.want)
		}
	}
	for _, name := range []string{
		"wire_client_bytes_sent_total", "wire_client_bytes_received_total",
		"wire_server_bytes_received_total", "wire_server_bytes_sent_total",
	} {
		if got := snap.Get(name, nil); got <= 0 {
			t.Errorf("%s = %v, want > 0", name, got)
		}
	}

	names := make(map[string]int)
	for _, ev := range tr.Events() {
		names[ev.Name]++
	}
	if names["rpc."+TypeRegisterLicense] != 2 || names["rpc."+TypeLicenseInfo] != 1 {
		t.Errorf("trace spans = %v", names)
	}
}

func TestServerRecoversHandlerPanic(t *testing.T) {
	reg := obs.NewRegistry()
	d := startInstrumentedDeployment(t, reg, nil, func(env Envelope) {
		if env.Type == TypeReportCrash {
			panic("injected handler panic")
		}
	})

	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	err = client.ReportCrash("sl-x")
	if err == nil {
		t.Fatal("panicking handler returned success")
	}
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("panic reply = %v, want remote internal error", err)
	}
	// The connection survives the panic: the same client keeps working.
	if err := client.RegisterLicense("lic", uint8(lease.CountBased), 10); err != nil {
		t.Fatalf("RPC after panic: %v", err)
	}
	if got := reg.Snapshot().Get("wire_server_handler_panics_total", nil); got != 1 {
		t.Fatalf("handler panics = %v, want 1", got)
	}
}

func TestRoundTripDeadline(t *testing.T) {
	// A server that accepts and reads but never replies: without the
	// per-roundtrip deadline the client would block forever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()

	client, err := DialTimeout(ln.Addr().String(), 150*time.Millisecond, ratls.Insecure())
	if err != nil {
		t.Fatalf("DialTimeout: %v", err)
	}
	defer client.Close()

	start := time.Now()
	_, err = client.LicenseInfo("lic")
	if err == nil {
		t.Fatal("round trip against a mute server succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v, want ~150ms", elapsed)
	}
}

func TestDialRetriesTransientFailure(t *testing.T) {
	// Grab a port with nothing listening: connect gets refused, which is
	// transient, so DialPolicy spends every configured attempt before
	// giving up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	policy := RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 1}
	_, err = DialPolicy(addr, 500*time.Millisecond, ratls.Insecure(), policy)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
