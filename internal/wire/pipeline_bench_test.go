package wire

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/ratls"
)

// benchLinkDelay is the simulated one-way response latency for the
// pipelining benchmark. SecureLease's deployment shape is an enclave in
// the wild renewing against a remote SL-Remote, so the interesting number
// is throughput when every reply pays a network delay — not loopback,
// where a single-core box serializes client and server anyway.
const benchLinkDelay = 200 * time.Microsecond

// delayConn simulates propagation delay on writes: each Write is queued
// and delivered to the peer benchLinkDelay later by a pump goroutine, in
// order, WITHOUT blocking the writer. That is what distinguishes latency
// from bandwidth — and what pipelining exists to amortize.
type delayConn struct {
	net.Conn
	d    time.Duration
	ch   chan delayedChunk
	done chan struct{}
	once sync.Once
}

type delayedChunk struct {
	at  time.Time
	buf []byte
}

func newDelayConn(c net.Conn, d time.Duration) *delayConn {
	dc := &delayConn{Conn: c, d: d, ch: make(chan delayedChunk, 4096), done: make(chan struct{})}
	go dc.pump()
	return dc
}

func (dc *delayConn) Write(p []byte) (int, error) {
	buf := append([]byte(nil), p...)
	select {
	case dc.ch <- delayedChunk{at: time.Now().Add(dc.d), buf: buf}:
		return len(p), nil
	case <-dc.done:
		return 0, net.ErrClosed
	}
}

func (dc *delayConn) pump() {
	for {
		select {
		case c := <-dc.ch:
			// Chunks queued while the pump slept for an earlier one have
			// already "propagated": their deadline is in the past and they
			// flush immediately, preserving order.
			if w := time.Until(c.at); w > 0 {
				time.Sleep(w)
			}
			if _, err := dc.Conn.Write(c.buf); err != nil {
				return
			}
		case <-dc.done:
			return
		}
	}
}

func (dc *delayConn) Close() error {
	dc.once.Do(func() { close(dc.done) })
	return dc.Conn.Close()
}

type delayListener struct {
	net.Listener
	d time.Duration
}

func (l delayListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newDelayConn(c, l.d), nil
}

// BenchmarkPipelinedRenewals measures renewal throughput over ONE wire
// connection at different in-flight depths, with benchLinkDelay of
// simulated one-way latency on every server reply. inflight=1 is the
// legacy lock-step protocol: each renewal pays the full reply delay
// before the next request leaves. inflight=16 keeps sixteen requests on
// the wire at once, which is the whole point of the correlation-ID demux:
// the link latency is paid once per window instead of once per RPC. The
// CI baseline pins the ≥3× separation between the two.
func BenchmarkPipelinedRenewals(b *testing.B) {
	for _, inflight := range []int{1, 16} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			d := startPipeDeployment(b, func(ln net.Listener) net.Listener {
				return delayListener{Listener: ln, d: benchLinkDelay}
			})
			// Perpetual: every renewal grants one unit without draining a
			// pool, so the benchmark never turns into a denial benchmark.
			const lic = "lic-bench"
			if err := d.remote.RegisterLicense(lic, lease.Perpetual, 1<<50); err != nil {
				b.Fatal(err)
			}
			slids := make([]string, inflight)
			for i := range slids {
				res, err := d.remote.InitClient("", attest.Quote{}, nil)
				if err != nil {
					b.Fatal(err)
				}
				slids[i] = res.SLID
			}
			client, err := Dial(d.addr, ratls.Insecure())
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			client.SetPoolSize(1) // one conn: depth comes from pipelining alone

			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < inflight; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for remaining.Add(-1) >= 0 {
						if _, err := client.RenewLease(slids[w], lic); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
