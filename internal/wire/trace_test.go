package wire

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/sgx"
	"repro/internal/sllocal"
)

// eventByName returns the newest event with the given name, oldest events
// losing to newer ones (retries re-run the same RPC).
func eventByName(events []obs.Event, name string) (obs.Event, bool) {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Name == name {
			return events[i], true
		}
	}
	return obs.Event{}, false
}

// TestDistributedTraceAcrossTCP is the tentpole acceptance test: a renewal
// driven through SL-Local and wire.Client over a real TCP connection must
// leave spans in BOTH processes' tracers sharing one TraceID, with the
// parent chain sllocal.renew → rpc.renew (client) → rpc.renew (server) →
// slremote.renew intact, and the trace retrievable from both /trace
// endpoints by ID.
func TestDistributedTraceAcrossTCP(t *testing.T) {
	serverReg, serverTr := obs.NewRegistry(), obs.NewTracer(64)
	d := startInstrumentedDeployment(t, serverReg, serverTr, nil)

	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "trace-client", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("trace-client", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	d.service.RegisterPlatform(plat)
	probe, err := m.CreateEnclave("probe", sllocal.EnclaveCodeIdentity, 0)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	d.service.TrustMeasurement(probe.Measurement())
	probe.Destroy()

	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	clientReg, clientTr := obs.NewRegistry(), obs.NewTracer(64)
	client.ExposeMetrics(clientReg, clientTr)

	if err := client.RegisterLicense("lic", uint8(lease.CountBased), 10_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}

	svc, err := sllocal.New(sllocal.Config{TokenBatch: 10}, sllocal.Deps{
		Machine: m, Platform: plat, Remote: client, State: &sllocal.UntrustedState{},
	})
	if err != nil {
		t.Fatalf("sllocal.New: %v", err)
	}
	svc.ExposeMetrics(clientReg, clientTr)
	if err := svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app, err := m.CreateEnclave("app", []byte("app"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	// The first token request forces exactly one renewal over the wire.
	if _, err := svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("RequestToken: %v", err)
	}

	cEvents, sEvents := clientTr.Events(), serverTr.Events()

	// Client side: sllocal.renew is the root, rpc.renew its child.
	local, ok := eventByName(cEvents, "sllocal.renew")
	if !ok {
		t.Fatalf("no sllocal.renew span in client tracer: %+v", cEvents)
	}
	if local.Parent != 0 {
		t.Errorf("sllocal.renew parent = %d, want root", local.Parent)
	}
	rpc, ok := eventByName(cEvents, "rpc.renew")
	if !ok {
		t.Fatalf("no rpc.renew span in client tracer: %+v", cEvents)
	}
	if rpc.Parent != local.Span {
		t.Errorf("client rpc.renew parent = %d, want sllocal.renew span %d", rpc.Parent, local.Span)
	}
	if rpc.Trace == "" || rpc.Trace != local.Trace {
		t.Fatalf("client trace IDs: rpc %q, sllocal %q", rpc.Trace, local.Trace)
	}
	trace := rpc.Trace

	// Server side: the handler span joined the client's trace with the
	// client RPC span as parent, and slremote.renew hangs off the handler.
	handler, ok := eventByName(sEvents, "rpc.renew")
	if !ok {
		t.Fatalf("no rpc.renew span in server tracer: %+v", sEvents)
	}
	if handler.Trace != trace {
		t.Errorf("server handler trace = %q, want %q", handler.Trace, trace)
	}
	if handler.Parent != rpc.Span {
		t.Errorf("server handler parent = %d, want client rpc span %d", handler.Parent, rpc.Span)
	}
	remote, ok := eventByName(sEvents, "slremote.renew")
	if !ok {
		t.Fatalf("no slremote.renew span in server tracer: %+v", sEvents)
	}
	if remote.Trace != trace || remote.Parent != handler.Span {
		t.Errorf("slremote.renew trace/parent = %q/%d, want %q/%d",
			remote.Trace, remote.Parent, trace, handler.Span)
	}
	if remote.Attrs["license"] != "lic" {
		t.Errorf("slremote.renew attrs = %v, want license=lic", remote.Attrs)
	}

	// The same trace ID pulls linked spans out of both /trace endpoints.
	for _, side := range []struct {
		name string
		h    http.Handler
	}{
		{"client", obs.Handler(clientReg, clientTr)},
		{"server", obs.Handler(serverReg, serverTr)},
	} {
		srv := httptest.NewServer(side.h)
		resp, err := http.Get(srv.URL + "/trace?trace=" + trace)
		if err != nil {
			t.Fatalf("%s /trace: %v", side.name, err)
		}
		var dump obs.TraceDump
		err = json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		srv.Close()
		if err != nil {
			t.Fatalf("%s /trace decode: %v", side.name, err)
		}
		events := dump.Events
		if len(events) == 0 {
			t.Errorf("%s /trace?trace=%s returned no events", side.name, trace)
		}
		for _, ev := range events {
			if ev.Trace != trace {
				t.Errorf("%s /trace filter leaked trace %q", side.name, ev.Trace)
			}
		}
	}

	// Init propagated the same way (fresh trace, same linkage shape).
	initLocal, ok1 := eventByName(cEvents, "sllocal.init")
	initHandler, ok2 := eventByName(sEvents, "rpc.init")
	if !ok1 || !ok2 {
		t.Fatalf("init spans missing: client %v server %v", ok1, ok2)
	}
	if initLocal.Trace != initHandler.Trace {
		t.Errorf("init trace IDs diverged: %q vs %q", initLocal.Trace, initHandler.Trace)
	}
	if initLocal.Trace == trace {
		t.Error("init and renew share a trace ID; they are separate requests")
	}
}

// TestPanicEndsHandlerSpan pins the satellite fix: a handler panic must
// still end the handler's trace span, recording the panic as the span
// error instead of leaving it dangling (and never recording it twice).
func TestPanicEndsHandlerSpan(t *testing.T) {
	reg, tr := obs.NewRegistry(), obs.NewTracer(64)
	d := startInstrumentedDeployment(t, reg, tr, func(env Envelope) {
		if env.Type == TypeReportCrash {
			panic("injected handler panic")
		}
	})

	client, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if err := client.ReportCrash("sl-x"); !errors.Is(err, ErrRemote) {
		t.Fatalf("panicking handler reply = %v, want remote error", err)
	}

	events := tr.Events()
	ev, ok := eventByName(events, "rpc."+TypeReportCrash)
	if !ok {
		t.Fatalf("panicking handler left no span: %+v", events)
	}
	if ev.Err == "" {
		t.Fatalf("handler span ended without the panic error: %+v", ev)
	}
	count := 0
	for _, e := range events {
		if e.Name == "rpc."+TypeReportCrash {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("handler span recorded %d times, want exactly once", count)
	}
	// The RPC latency histogram moved exactly once too.
	if got := reg.Snapshot().Get("wire_server_rpc_latency_seconds_count",
		map[string]string{"type": TypeReportCrash}); got != 1 {
		t.Fatalf("latency count = %v, want 1", got)
	}
}
