package wire

import (
	"bytes"
	"encoding/base64"
	"errors"
	"net"
	"sync"
	"testing"

	"repro/internal/attest"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/slremote"
)

// captureBuf accumulates every byte that crosses the server's sockets,
// in both directions — a packet capture without the pcap.
type captureBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *captureBuf) add(p []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Write(p)
}

func (c *captureBuf) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

type captureListener struct {
	net.Listener
	cap *captureBuf
}

func (l captureListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &captureConn{Conn: conn, cap: l.cap}, nil
}

type captureConn struct {
	net.Conn
	cap *captureBuf
}

func (c *captureConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.cap.add(p[:n])
	return n, err
}

func (c *captureConn) Write(p []byte) (int, error) {
	c.cap.add(p)
	return c.Conn.Write(p)
}

// ratlsEndpoint builds an attested channel config whose identity is
// registered with and trusted by svc.
func ratlsEndpoint(t *testing.T, name, code string, svc *attest.Service) *ratls.Config {
	t.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: name, EPCBytes: 1 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	p, err := attest.NewPlatform(name, m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	e, err := m.CreateEnclave(name, []byte(code), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	svc.RegisterPlatform(p)
	svc.TrustMeasurement(e.Measurement())
	cfg, err := ratls.New(ratls.Options{Platform: p, Enclave: e, Verifier: svc})
	if err != nil {
		t.Fatalf("ratls.New: %v", err)
	}
	return cfg
}

// captureDeployment starts a wire server behind a byte-capturing
// listener, speaking the given channel config.
func captureDeployment(t *testing.T, rc *ratls.Config) (addr string, cap *captureBuf) {
	t.Helper()
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("slremote.NewServer: %v", err)
	}
	srv, err := NewServer(remote, nil, rc)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	cap = &captureBuf{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(captureListener{Listener: ln, cap: cap})
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String(), cap
}

// escrowKey is a recognizable key pattern; its raw bytes and base64
// encoding are what the capture is scanned for.
func escrowKey(t *testing.T) (seccrypto.Key, [][]byte) {
	t.Helper()
	raw := []byte("0123456789abcdef")
	key, err := seccrypto.KeyFromBytes(raw)
	if err != nil {
		t.Fatalf("KeyFromBytes: %v", err)
	}
	return key, [][]byte{raw, []byte(base64.StdEncoding.EncodeToString(raw))}
}

// TestNoKeyBytesOnAttestedWire is the packet-capture proof for the
// acceptance criterion: with the attested channel, neither the raw root
// key nor its JSON (base64) encoding ever appears in the TCP byte
// stream — the TLS record layer is between the envelope and the wire.
func TestNoKeyBytesOnAttestedWire(t *testing.T) {
	svc := attest.NewService()
	cliCfg := ratlsEndpoint(t, "cap-cli", "cli-code", svc)
	srvCfg := ratlsEndpoint(t, "cap-srv", "srv-code", svc)
	addr, cap := captureDeployment(t, srvCfg)

	client, err := Dial(addr, cliCfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	key, needles := escrowKey(t)
	// The escrow is rejected (unknown SLID) but the request — key
	// included — has already crossed the wire, which is what matters.
	if err := client.EscrowRootKey("ghost", key); !errors.Is(err, ErrRemote) {
		t.Fatalf("escrow ghost: %v", err)
	}

	captured := cap.bytes()
	if len(captured) == 0 {
		t.Fatal("capture is empty")
	}
	// TLS handshake record: content type 0x16, legacy version 0x03 0x01.
	if captured[0] != 0x16 || captured[1] != 0x03 {
		t.Fatalf("stream does not start with a TLS handshake record: % x", captured[:4])
	}
	for _, needle := range needles {
		if bytes.Contains(captured, needle) {
			t.Fatalf("key material %q found in attested capture", needle)
		}
	}
}

// TestInsecureChannelLeaksKeyBytes is the sanity check for the capture
// harness: over the explicit plaintext channel the key's JSON encoding
// IS visible, so the negative result above is meaningful.
func TestInsecureChannelLeaksKeyBytes(t *testing.T) {
	addr, cap := captureDeployment(t, ratls.Insecure())
	client, err := Dial(addr, ratls.Insecure())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()

	key, needles := escrowKey(t)
	if err := client.EscrowRootKey("ghost", key); !errors.Is(err, ErrRemote) {
		t.Fatalf("escrow ghost: %v", err)
	}
	if !bytes.Contains(cap.bytes(), needles[1]) {
		t.Fatal("plaintext capture does not contain the key's base64 encoding; the sniffer is broken")
	}
}
