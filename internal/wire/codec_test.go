package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"reflect"
	"testing"
)

// legacyEncode frames an envelope the way the pre-pipelining encoder did:
// one json.Marshal of the whole Envelope behind the 4-byte length header.
// The zero-allocation codec must stay byte-compatible with this forever —
// old peers decode new frames and vice versa.
func legacyEncode(t *testing.T, env *Envelope) []byte {
	t.Helper()
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame
}

// FuzzEnvelope pins the zero-allocation codec to encoding/json: for every
// reachable envelope shape the hand-rolled encoder must produce the exact
// bytes json.Marshal produces (field order, omitempty, string escaping
// including HTML escapes, invalid UTF-8 replacement, and U+2028/U+2029),
// so frames written by either encoder decode identically on either side.
func FuzzEnvelope(f *testing.F) {
	f.Add("renew", uint64(7), "0123456789abcdef0123456789abcdef", uint64(3), true, []byte(`{"slid":"s","license":"l"}`))
	f.Add("", uint64(0), "", uint64(0), false, []byte(``))
	f.Add("wei\x00rd<&>\"\\", uint64(1), "tr\xfface  ", uint64(0), true, []byte(`not json`))
	f.Add("ok", uint64(math.MaxUint64), "t", uint64(math.MaxUint64), true, []byte(`[1, 2, {"a": null}]`))
	f.Add("error", uint64(2), "", uint64(9), true, []byte("{\"message\":\"\\u2028\\tkaput\"}"))
	f.Fuzz(func(t *testing.T, msgType string, id uint64, traceID string, spanID uint64, hasTrace bool, payload []byte) {
		env := Envelope{Type: msgType, ID: id}
		if hasTrace {
			env.Trace = &TraceContext{TraceID: traceID, SpanID: spanID}
		}
		if len(payload) != 0 {
			// Envelope payloads are compact JSON on the wire. Valid JSON
			// inputs are compacted; everything else rides as a JSON string,
			// which also exercises the string escaper on arbitrary bytes.
			if json.Valid(payload) {
				var buf bytes.Buffer
				if err := json.Compact(&buf, payload); err != nil {
					t.Skip("valid but uncompactable JSON")
				}
				env.Payload = json.RawMessage(buf.Bytes())
			} else {
				quoted, err := json.Marshal(string(payload))
				if err != nil {
					t.Fatalf("quoting payload: %v", err)
				}
				env.Payload = quoted
			}
		}

		want, err := json.Marshal(&env)
		if err != nil {
			t.Fatalf("json.Marshal(envelope): %v", err)
		}
		if got := appendEnvelope(nil, &env); !bytes.Equal(got, want) {
			t.Fatalf("codec diverges from encoding/json:\n got %q\nwant %q", got, want)
		}
		if len(want) > MaxMessageSize {
			return // both encoders refuse oversize frames
		}

		legacy := legacyEncode(t, &env)
		var p any
		if len(env.Payload) != 0 {
			p = env.Payload
		}
		var fast bytes.Buffer
		if err := WriteMessageID(&fast, env.Type, env.ID, p, env.Trace); err != nil {
			t.Fatalf("WriteMessageID: %v", err)
		}
		if !bytes.Equal(fast.Bytes(), legacy) {
			t.Fatalf("frame bytes diverge:\n got %q\nwant %q", fast.Bytes(), legacy)
		}

		// Old-encodes → new-decodes and vice versa: both frames decode,
		// and to the same envelope.
		envOld, err := ReadMessage(bytes.NewReader(legacy))
		if err != nil {
			t.Fatalf("decoding legacy frame: %v", err)
		}
		envNew, err := ReadMessage(&fast)
		if err != nil {
			t.Fatalf("decoding fast frame: %v", err)
		}
		if !reflect.DeepEqual(envOld, envNew) {
			t.Fatalf("decoded envelopes diverge:\n old %+v\nnew %+v", envOld, envNew)
		}
	})
}

// TestHotPathEncodingAllocs pins the point of the hand-rolled codec: a
// renewal-shaped frame write allocates nothing once the buffer pool is
// warm.
func TestHotPathEncodingAllocs(t *testing.T) {
	// Box the payload once: interface conversion at the call boundary is
	// the caller's one unavoidable allocation, and the encoder must add
	// none of its own.
	var req any = RenewRequest{SLID: "slid-0001", License: "lic-throughput"}
	// Warm the pool.
	if err := WriteMessageID(io.Discard, TypeRenew, 1, req, nil); err != nil {
		t.Fatalf("WriteMessageID: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := WriteMessageID(io.Discard, TypeRenew, 42, req, nil); err != nil {
			t.Fatalf("WriteMessageID: %v", err)
		}
	})
	if allocs > 0 {
		t.Fatalf("hot-path frame write allocates %.1f objects per RPC, want 0", allocs)
	}
}

// TestFastPayloadsMatchMarshal pins every hand-coded payload fast path to
// encoding/json, including omitempty edges the fuzzer may not synthesize
// as typed structs.
func TestFastPayloadsMatchMarshal(t *testing.T) {
	payloads := []any{
		RenewRequest{SLID: "s", License: "l"},
		RenewRequest{},
		RenewResponse{Units: 12, Kind: 1, Counter: 12},
		RenewResponse{Units: -3, Kind: 0, Counter: 0, IntervalNS: 5_000_000},
		ConsumeRequest{SLID: "s", License: "l", Units: 9},
		ConsumeRequest{SLID: "we\"ird\\", License: "<&> ", Units: -1},
		ErrorResponse{Message: "ka\nput\xff"},
		ErrorResponse{},
	}
	for _, p := range payloads {
		want, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("json.Marshal(%T): %v", p, err)
		}
		got, ok := appendPayload(nil, p)
		if !ok {
			t.Fatalf("appendPayload(%T): no fast path", p)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%T fast path diverges:\n got %q\nwant %q", p, got, want)
		}
	}
}
