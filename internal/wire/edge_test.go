package wire

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/lease"
	"repro/internal/ratls"
	"repro/internal/slremote"
)

func TestWriteMessageRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	huge := strings.Repeat("x", MaxMessageSize)
	err := WriteMessage(&buf, TypeRenew, RenewRequest{SLID: huge, License: "l"})
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestWriteMessageUnmarshalablePayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeOK, func() {}); err == nil {
		t.Fatal("unmarshalable payload accepted")
	}
}

func TestRemoteErrFormats(t *testing.T) {
	env := Envelope{Type: TypeError, Payload: []byte(`{"message":"kaput"}`)}
	err := RemoteErr(env)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v", err)
	}
	// Unexpected type formatting.
	err = RemoteErr(Envelope{Type: "weird"})
	if !strings.Contains(err.Error(), "weird") {
		t.Fatalf("err = %v", err)
	}
}

func TestServerCloseIdempotentAndServeAfterClose(t *testing.T) {
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(remote, nil, ratls.Insecure())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Close accepted")
	}
}

func TestConcurrentClientsOneServer(t *testing.T) {
	d := startDeployment(t)
	if err := func() error {
		c, err := Dial(d.addr, ratls.Insecure())
		if err != nil {
			return err
		}
		defer c.Close()
		return c.RegisterLicense("lic", uint8(lease.CountBased), 1_000_000)
	}(); err != nil {
		t.Fatalf("setup: %v", err)
	}

	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(d.addr, ratls.Insecure())
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if _, err := c.LicenseInfo("lic"); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

func TestClientSurvivesSharedUseAcrossGoroutines(t *testing.T) {
	d := startDeployment(t)
	c, err := Dial(d.addr, ratls.Insecure())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterLicense("shared", uint8(lease.CountBased), 1_000_000); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.LicenseInfo("shared"); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", w, err)
		}
	}
}

func TestMalformedPayloadsReturnErrors(t *testing.T) {
	d := startDeployment(t)
	conn, err := net.Dial("tcp", d.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid envelope, garbage payload for a typed request.
	if err := WriteMessage(conn, TypeRenew, "not-an-object"); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMessage(conn)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if env.Type != TypeError {
		t.Fatalf("reply = %q", env.Type)
	}
	// Escrow with a bad key length.
	if err := WriteMessage(conn, TypeEscrow, EscrowRequest{SLID: "s", Key: []byte{1, 2}}); err != nil {
		t.Fatal(err)
	}
	env, err = ReadMessage(conn)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if env.Type != TypeError {
		t.Fatalf("reply = %q", env.Type)
	}
}
