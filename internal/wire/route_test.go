package wire

import (
	"errors"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/slremote"
	"repro/internal/store"
)

func TestBackoffSeededDeterminism(t *testing.T) {
	policy := RetryPolicy{Attempts: 6, Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 42}
	draw := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 0, 5)
		for retry := 1; retry <= 5; retry++ {
			out = append(out, policy.backoff(retry, rng))
		}
		return out
	}
	a, b := draw(42), draw(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different backoffs:\n %v\n %v", a, b)
	}
	if c := draw(43); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds drew identical backoffs: %v", a)
	}
	// Full jitter stays within the doubling-then-capped ceiling.
	ceilings := []time.Duration{10, 20, 40, 50, 50}
	for i := range ceilings {
		ceilings[i] *= time.Millisecond
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		for retry := 1; retry <= 5; retry++ {
			if d := policy.backoff(retry, rng); d < 0 || d > ceilings[retry-1] {
				t.Fatalf("backoff(%d) = %v outside [0, %v]", retry, d, ceilings[retry-1])
			}
		}
	}
}

func TestDialRetriesCountedAccurately(t *testing.T) {
	// A port with nothing listening: every attempt is refused, so the
	// retry counter must land at exactly Attempts-1.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	c := &Client{
		timeout: 500 * time.Millisecond,
		rc:      ratls.Insecure(),
		policy:  RetryPolicy{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 9},
		rng:     rand.New(rand.NewSource(9)),
	}
	if _, err := c.dial(deadAddr); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if got := c.dialRetries.Load(); got != 3 {
		t.Fatalf("dialRetries = %d after 4 failed attempts, want 3", got)
	}

	// A clean first-attempt connect costs zero retries, and the registry
	// reads the same counter the client increments.
	d := startDeployment(t)
	client, err := DialPolicy(d.addr, time.Second, ratls.Insecure(), RetryPolicy{Attempts: 4, Base: time.Millisecond, Seed: 9})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer client.Close()
	reg := obs.NewRegistry()
	client.ExposeMetrics(reg, nil)
	if got := reg.Snapshot().Get("wire_client_dial_retries_total", nil); got != 0 {
		t.Fatalf("wire_client_dial_retries_total = %v after clean dial, want 0", got)
	}
	client.dialRetries.Add(2)
	if got := reg.Snapshot().Get("wire_client_dial_retries_total", nil); got != 2 {
		t.Fatalf("wire_client_dial_retries_total = %v, want 2", got)
	}
}

// startShardPair spins up two deployments where only `owner` owns every
// license: the other server's gate redirects to it.
func startShardPair(t *testing.T) (stale, owner *testDeployment) {
	t.Helper()
	stale, owner = startDeployment(t), startDeployment(t)
	leader := owner.addr
	stale.server.SetShardGate(func(licenseID string) (string, uint64, bool) {
		return leader, 7, false
	})
	owner.server.SetShardGate(func(licenseID string) (string, uint64, bool) {
		return leader, 7, true
	})
	return stale, owner
}

func TestClientFollowsNotLeaderRedirect(t *testing.T) {
	stale, owner := startShardPair(t)

	client, err := DialPolicy(stale.addr, time.Second, ratls.Insecure(), RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer client.Close()
	reg := obs.NewRegistry()
	client.ExposeMetrics(reg, nil)

	// The admin write lands on the owning shard despite being sent to the
	// stale server.
	if err := client.RegisterLicense("lic", uint8(lease.CountBased), 500); err != nil {
		t.Fatalf("RegisterLicense via redirect: %v", err)
	}
	if _, err := owner.remote.License("lic"); err != nil {
		t.Fatalf("license missing on owner after redirected registration: %v", err)
	}
	if _, err := stale.remote.License("lic"); err == nil {
		t.Fatal("license landed on the stale server")
	}
	if got := client.redirects.Load(); got != 1 {
		t.Fatalf("redirects = %d, want 1", got)
	}
	if got := reg.Snapshot().Get("wire_client_redirects_total", nil); got != 1 {
		t.Fatalf("wire_client_redirects_total = %v, want 1", got)
	}

	// The connection now points at the leader: further license-scoped
	// calls go direct, costing no additional redirect.
	info, err := client.LicenseInfo("lic")
	if err != nil {
		t.Fatalf("LicenseInfo after redirect: %v", err)
	}
	if info.TotalGCL != 500 {
		t.Fatalf("TotalGCL = %d, want 500", info.TotalGCL)
	}
	if got := client.redirects.Load(); got != 1 {
		t.Fatalf("redirects = %d after direct call, want still 1", got)
	}
}

func TestClientRedirectLoopAndLeaderlessShard(t *testing.T) {
	// Two stale servers pointing at each other: the hop bound turns the
	// routing loop into ErrNotLeader instead of ping-ponging forever.
	a, b := startDeployment(t), startDeployment(t)
	addrA, addrB := a.addr, b.addr
	a.server.SetShardGate(func(string) (string, uint64, bool) { return addrB, 1, false })
	b.server.SetShardGate(func(string) (string, uint64, bool) { return addrA, 1, false })

	client, err := DialPolicy(addrA, time.Second, ratls.Insecure(), RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 5})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer client.Close()
	if _, err := client.LicenseInfo("lic"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("routing loop err = %v, want ErrNotLeader", err)
	}

	// A shard mid-failover names no leader: the client fails fast rather
	// than redialing anywhere.
	leaderless := startDeployment(t)
	leaderless.server.SetShardGate(func(string) (string, uint64, bool) { return "", 2, false })
	c2, err := DialPolicy(leaderless.addr, time.Second, ratls.Insecure(), RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 5})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer c2.Close()
	if _, err := c2.LicenseInfo("lic"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("leaderless err = %v, want ErrNotLeader", err)
	}
	if !strings.Contains(c2.addr, leaderless.addr) {
		t.Fatalf("client moved to %q despite leaderless reply", c2.addr)
	}
}

func TestReplPullStreamsWALOverWire(t *testing.T) {
	// A persistent leader behind a wire server with a replication source:
	// a remote follower pulling over TCP converges to the leader's state.
	key, err := seccrypto.KeyFromBytes([]byte("fedcba9876543210"))
	if err != nil {
		t.Fatalf("KeyFromBytes: %v", err)
	}
	st, rec, err := store.Open(store.Options{Dir: t.TempDir(), Mode: store.SyncAlways})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	leader, err := slremote.RecoverServer(slremote.DefaultConfig(), nil, rec, slremote.PersistConfig{Log: st, Snap: st, SealKey: key})
	if err != nil {
		t.Fatalf("RecoverServer: %v", err)
	}
	srv, err := NewServer(leader, t.Logf, ratls.Insecure())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.SetReplSource(st)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	defer func() { srv.Close(); <-done }()

	if err := leader.RegisterLicense("lic", lease.CountBased, 800); err != nil {
		t.Fatal(err)
	}
	init, err := leader.InitClient("", attest.Quote{}, nil)
	if err != nil {
		t.Fatalf("InitClient: %v", err)
	}
	if _, err := leader.RenewLease(init.SLID, "lic"); err != nil {
		t.Fatalf("RenewLease: %v", err)
	}

	client, err := DialPolicy(ln.Addr().String(), time.Second, ratls.Insecure(), RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 11})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer client.Close()
	replica, err := slremote.NewReplica(slremote.DefaultConfig(), nil, key)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	var gen uint64
	var off int64
	for {
		resp, err := client.ReplPull(gen, off, 0)
		if err != nil {
			t.Fatalf("ReplPull: %v", err)
		}
		batch := store.TailBatch{
			Gen:        resp.Gen,
			Rebase:     resp.Rebase,
			Snapshot:   resp.Snapshot,
			Records:    resp.Records,
			NextOffset: resp.NextOffset,
			Tip:        resp.Tip,
		}
		if _, err := replica.ApplyBatch(batch); err != nil {
			t.Fatalf("ApplyBatch: %v", err)
		}
		gen, off = resp.Gen, resp.NextOffset
		if batch.Caught() {
			break
		}
	}
	if got, want := replica.State(), leader.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica diverged over the wire:\n got %+v\nwant %+v", got, want)
	}

	// A server without a source refuses the pull instead of pretending an
	// empty WAL.
	bare := startDeployment(t)
	c2, err := DialPolicy(bare.addr, time.Second, ratls.Insecure(), RetryPolicy{Attempts: 2, Base: time.Millisecond, Seed: 11})
	if err != nil {
		t.Fatalf("DialPolicy: %v", err)
	}
	defer c2.Close()
	if _, err := c2.ReplPull(0, 0, 0); err == nil {
		t.Fatal("ReplPull against a source-less server succeeded")
	}
}
