package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
)

// DefaultTimeout bounds the connect and each request/reply round trip for
// clients built with Dial. Without it a hung or partitioned server stalls
// SL-Local forever on a blocking read.
const DefaultTimeout = 10 * time.Second

// maxRedirectHops bounds how many not-leader redirects one logical RPC
// follows before giving up — enough to chase a failover that completes
// mid-request, small enough that a routing loop (two stale servers
// pointing at each other) fails fast instead of ping-ponging.
const maxRedirectHops = 3

// RetryPolicy shapes the dial retry schedule: seeded exponential backoff
// with full jitter. During a failover storm every disconnected client
// redials at once; the jitter spreads the reconnect herd, and the seed
// keeps harness runs reproducible.
type RetryPolicy struct {
	// Attempts is the total number of connect attempts (minimum 1).
	Attempts int
	// Base is the backoff ceiling before the first retry; each further
	// retry doubles it, capped at Max.
	Base time.Duration
	// Max caps the per-retry backoff ceiling.
	Max time.Duration
	// Seed seeds the jitter stream. Two clients with the same policy but
	// different seeds sleep differently — that is the point.
	Seed int64
}

// DefaultRetryPolicy is the production dial schedule: four attempts with
// backoff ceilings of 100ms, 200ms, 400ms.
func DefaultRetryPolicy(seed int64) RetryPolicy {
	return RetryPolicy{Attempts: 4, Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: seed}
}

func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// backoff returns the pause before retry number retry (1-based): a
// uniformly random duration in [0, min(Max, Base·2^(retry-1))] — the
// "full jitter" schedule, which decorrelates a reconnect herd better than
// jittering around the midpoint.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	ceiling := p.Base
	if ceiling <= 0 {
		ceiling = 100 * time.Millisecond
	}
	for i := 1; i < retry; i++ {
		ceiling *= 2
		if p.Max > 0 && ceiling >= p.Max {
			ceiling = p.Max
			break
		}
	}
	if p.Max > 0 && ceiling > p.Max {
		ceiling = p.Max
	}
	return time.Duration(rng.Int63n(int64(ceiling) + 1))
}

// ErrNilChannelConfig reports a Dial or NewServer call without a channel
// config: the caller must choose attested (ratls.New) or explicitly
// plaintext (ratls.Insecure()), never get plaintext by accident.
var ErrNilChannelConfig = errors.New("wire: nil channel config (use ratls.Insecure() for explicit plaintext)")

// Client is the TCP binding of SL-Remote: it implements sllocal.RemoteAPI
// over a connection to a wire.Server, so an sllocal.Service runs against a
// real license-server daemon unchanged.
//
// Client serializes requests on one connection; it is safe for concurrent
// use.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	addr    string // address of the server conn speaks to (moves on redirect)
	rc      *ratls.Config
	timeout time.Duration
	policy  RetryPolicy
	rng     *rand.Rand // jitter stream; guarded by mu after construction

	bytesOut    atomic.Int64
	bytesIn     atomic.Int64
	dialRetries atomic.Int64
	redirects   atomic.Int64
	metrics     atomic.Pointer[clientMetrics]
}

// Dial connects to a wire.Server at addr with DefaultTimeout for the
// connect and every round trip. rc selects the channel: an attested
// ratls config for production, ratls.Insecure() for plaintext paths.
func Dial(addr string, rc *ratls.Config) (*Client, error) {
	return DialTimeout(addr, DefaultTimeout, rc)
}

// DialTimeout connects to a wire.Server at addr and runs the channel
// handshake rc prescribes. timeout bounds the connect (TCP plus
// handshake) and each subsequent request/reply round trip; zero disables
// deadlines (blocking semantics). Transient connect failures (timeout,
// refused, unreachable, or a failed channel handshake) are retried on
// DefaultRetryPolicy's jittered exponential backoff, seeded from the
// clock.
func DialTimeout(addr string, timeout time.Duration, rc *ratls.Config) (*Client, error) {
	return DialPolicy(addr, timeout, rc, DefaultRetryPolicy(time.Now().UnixNano()))
}

// DialPolicy is DialTimeout with an explicit retry schedule; harnesses use
// a seeded policy so reconnect storms replay identically.
func DialPolicy(addr string, timeout time.Duration, rc *ratls.Config, policy RetryPolicy) (*Client, error) {
	if rc == nil {
		return nil, ErrNilChannelConfig
	}
	c := &Client{
		timeout: timeout,
		rc:      rc,
		policy:  policy,
		rng:     rand.New(rand.NewSource(policy.Seed)),
	}
	conn, err := c.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	c.conn = conn
	c.addr = addr
	return c, nil
}

// dial runs the policy's connect-attempt loop: every transient failure
// costs one jittered backoff and one tick of wire_client_dial_retries_total;
// a non-transient failure (e.g. address resolution) aborts immediately.
func (c *Client) dial(addr string) (net.Conn, error) {
	var err error
	for attempt := 1; attempt <= c.policy.attempts(); attempt++ {
		if attempt > 1 {
			c.dialRetries.Add(1)
			time.Sleep(c.policy.backoff(attempt-1, c.rng))
		}
		var conn net.Conn
		conn, err = c.connect(addr)
		if err == nil {
			return conn, nil
		}
		if !transientDialErr(err) {
			return nil, err
		}
	}
	return nil, err
}

// connect performs one TCP connect plus channel handshake. On handshake
// failure ratls has already closed the raw connection.
func (c *Client) connect(addr string) (net.Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, c.timeout)
	if err != nil {
		return nil, err
	}
	return c.rc.Client(raw)
}

// transientDialErr reports whether a connect failure is worth one retry:
// timeouts, kernel-level connection errors (refused, reset, unreachable),
// and channel handshake failures (the peer may have been mid-restart or
// mid-rotation) are; address resolution failures are not.
func transientDialErr(err error) bool {
	if errors.Is(err, ratls.ErrHandshake) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var se *net.OpError
	if errors.As(err, &se) {
		var dns *net.DNSError
		return !errors.As(se.Err, &dns)
	}
	return false
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and reads the reply, bounded by the client's
// per-roundtrip deadline.
func (c *Client) roundTrip(msgType string, payload any) (Envelope, error) {
	return c.roundTripSpan(nil, msgType, payload)
}

// roundTripSpan is roundTrip under an optional caller span. The RPC gets
// its own span — a child of parent when given, else a root span from the
// client tracer — and the span's context is injected into the outgoing
// envelope so the server's handler span joins the same trace.
func (c *Client) roundTripSpan(parent *obs.Span, msgType string, payload any) (Envelope, error) {
	m := c.metrics.Load()
	label := rpcLabel(msgType)
	var span *obs.Span
	if parent != nil {
		span = parent.Child("rpc." + label)
	} else if m != nil {
		span = m.tracer.Start("rpc." + label)
	}
	var tc *TraceContext
	if sc := span.Context(); !sc.Trace.IsZero() {
		tc = &TraceContext{TraceID: sc.Trace.String(), SpanID: sc.Span}
	}
	start := time.Now()
	c.mu.Lock()
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	env, err := c.roundTripLocked(msgType, payload, tc)
	c.mu.Unlock()
	if m != nil {
		m.rpcs.With(label).Inc()
		m.latency.With(label).Observe(time.Since(start).Seconds())
		if err != nil {
			m.errors.With(label).Inc()
		}
	}
	span.End(err)
	return env, err
}

// roundTripRoute is roundTripSpan for license-scoped requests against a
// sharded cluster: a TypeNotLeader reply re-dials the connection to the
// named leader and retries, so SL-Local re-routes transparently across
// failovers. Hops are bounded; a loop of stale servers or a leaderless
// shard surfaces as ErrNotLeader.
func (c *Client) roundTripRoute(parent *obs.Span, msgType string, payload any) (Envelope, error) {
	for hop := 0; ; hop++ {
		env, err := c.roundTripSpan(parent, msgType, payload)
		if err != nil || env.Type != TypeNotLeader {
			return env, err
		}
		var nl NotLeaderResponse
		if err := DecodePayload(env, &nl); err != nil {
			return Envelope{}, err
		}
		if hop >= maxRedirectHops || nl.Leader == "" {
			return Envelope{}, fmt.Errorf("%w: license %q (leader %q, epoch %d, %d hops)",
				ErrNotLeader, nl.License, nl.Leader, nl.Epoch, hop+1)
		}
		if err := c.redirect(nl.Leader); err != nil {
			return Envelope{}, err
		}
	}
}

// redirect moves the client's connection to addr (with the dial policy's
// backoff), closing the old connection once the new one is up. A no-op
// when another RPC already moved there.
func (c *Client) redirect(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if addr == c.addr {
		return nil
	}
	conn, err := c.dial(addr)
	if err != nil {
		return fmt.Errorf("wire: redirecting to %s: %w", addr, err)
	}
	old := c.conn
	c.conn = conn
	c.addr = addr
	_ = old.Close()
	c.redirects.Add(1)
	return nil
}

func (c *Client) roundTripLocked(msgType string, payload any, tc *TraceContext) (Envelope, error) {
	if err := WriteMessageTrace(countWriter{c.conn, &c.bytesOut}, msgType, payload, tc); err != nil {
		return Envelope{}, err
	}
	return ReadMessage(countReader{c.conn, &c.bytesIn})
}

// InitClient implements sllocal.RemoteAPI over the wire. The remote
// attestation's multi-second latency is charged to the client machine
// (the server side cannot reach its clock).
func (c *Client) InitClient(slid string, quote attest.Quote, clientMachine *sgx.Machine) (slremote.InitResult, error) {
	return c.InitClientSpan(nil, slid, quote, clientMachine)
}

// InitClientSpan is InitClient with the RPC span linked under parent, so
// the whole init handshake shares the caller's TraceID (sllocal uses this
// via its traced-remote binding).
func (c *Client) InitClientSpan(parent *obs.Span, slid string, quote attest.Quote, clientMachine *sgx.Machine) (slremote.InitResult, error) {
	if clientMachine != nil {
		clientMachine.ChargeRemoteAttestation()
	}
	env, err := c.roundTripSpan(parent, TypeInit, InitRequest{SLID: slid, Quote: quote})
	if err != nil {
		return slremote.InitResult{}, err
	}
	if env.Type != TypeInit {
		return slremote.InitResult{}, RemoteErr(env)
	}
	var resp InitResponse
	if err := DecodePayload(env, &resp); err != nil {
		return slremote.InitResult{}, err
	}
	out := slremote.InitResult{SLID: resp.SLID, HasOBK: resp.HasOBK}
	if resp.HasOBK {
		key, err := seccrypto.KeyFromBytes(resp.OBK)
		if err != nil {
			return slremote.InitResult{}, fmt.Errorf("wire: decoding OBK: %w", err)
		}
		out.OBK = key
	}
	return out, nil
}

// RenewLease implements sllocal.RemoteAPI over the wire.
func (c *Client) RenewLease(slid, licenseID string) (slremote.Grant, error) {
	return c.RenewLeaseSpan(nil, slid, licenseID)
}

// RenewLeaseSpan is RenewLease with the RPC span linked under parent.
func (c *Client) RenewLeaseSpan(parent *obs.Span, slid, licenseID string) (slremote.Grant, error) {
	env, err := c.roundTripRoute(parent, TypeRenew, RenewRequest{SLID: slid, License: licenseID})
	if err != nil {
		return slremote.Grant{}, err
	}
	if env.Type != TypeRenew {
		return slremote.Grant{}, RemoteErr(env)
	}
	var resp RenewResponse
	if err := DecodePayload(env, &resp); err != nil {
		return slremote.Grant{}, err
	}
	grant := slremote.Grant{License: licenseID, Units: resp.Units}
	grant.GCL.Kind = lease.Kind(resp.Kind)
	grant.GCL.Counter = resp.Counter
	grant.GCL.Interval = time.Duration(resp.IntervalNS)
	return grant, nil
}

// EscrowRootKey implements sllocal.RemoteAPI over the wire.
func (c *Client) EscrowRootKey(slid string, key seccrypto.Key) error {
	return c.EscrowRootKeySpan(nil, slid, key)
}

// EscrowRootKeySpan is EscrowRootKey with the RPC span linked under parent.
func (c *Client) EscrowRootKeySpan(parent *obs.Span, slid string, key seccrypto.Key) error {
	// SealForChannel releases the key only into an attested (or explicitly
	// insecure) connection; a plain net.Conn is refused at runtime.
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	sealed, err := ratls.SealForChannel(key, conn)
	if err != nil {
		return err
	}
	env, err := c.roundTripSpan(parent, TypeEscrow, EscrowRequest{SLID: slid, Key: sealed})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// RegisterLicense registers a license on the remote server (admin). In a
// sharded cluster the request follows redirects to the license's owning
// shard.
func (c *Client) RegisterLicense(id string, kind uint8, totalGCL int64) error {
	env, err := c.roundTripRoute(nil, TypeRegisterLicense, RegisterLicenseRequest{ID: id, Kind: kind, TotalGCL: totalGCL})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// ReportCrash reports a crashed SL-Local (admin/monitor).
func (c *Client) ReportCrash(slid string) error {
	env, err := c.roundTrip(TypeReportCrash, ReportCrashRequest{SLID: slid})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// SetProfile updates a client's Algorithm 1 inputs (admin/monitor).
func (c *Client) SetProfile(slid string, health, reliability, weight float64) error {
	env, err := c.roundTrip(TypeSetProfile, SetProfileRequest{
		SLID: slid, Health: health, Reliability: reliability, Weight: weight,
	})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// ConsumeReport reports spent units so the server's outstanding view (and
// the conservation ledger behind it) tracks reality.
func (c *Client) ConsumeReport(slid, licenseID string, units int64) error {
	env, err := c.roundTripRoute(nil, TypeConsume, ConsumeRequest{SLID: slid, License: licenseID, Units: units})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// LicenseInfo fetches license state (admin), following shard redirects.
func (c *Client) LicenseInfo(id string) (LicenseInfoResponse, error) {
	env, err := c.roundTripRoute(nil, TypeLicenseInfo, LicenseInfoRequest{ID: id})
	if err != nil {
		return LicenseInfoResponse{}, err
	}
	if env.Type != TypeLicenseInfo {
		return LicenseInfoResponse{}, RemoteErr(env)
	}
	var resp LicenseInfoResponse
	if err := DecodePayload(env, &resp); err != nil {
		return LicenseInfoResponse{}, err
	}
	return resp, nil
}

// ReplPull fetches one replication batch: the server's durable WAL
// records after position (gen, offset). Followers call it in a loop,
// advancing their position by the returned NextOffset.
func (c *Client) ReplPull(gen uint64, offset int64, maxBytes int) (ReplBatchResponse, error) {
	env, err := c.roundTrip(TypeReplPull, ReplPullRequest{Gen: gen, Offset: offset, MaxBytes: maxBytes})
	if err != nil {
		return ReplBatchResponse{}, err
	}
	if env.Type != TypeReplBatch {
		return ReplBatchResponse{}, RemoteErr(env)
	}
	var resp ReplBatchResponse
	if err := DecodePayload(env, &resp); err != nil {
		return ReplBatchResponse{}, err
	}
	return resp, nil
}

// ObsPull fetches the server's observability snapshot (metric export,
// trace dump, flight dump) over the channel. traceFilter, when non-empty,
// narrows the trace dump to one hex TraceID.
func (c *Client) ObsPull(traceFilter string) (ObsPullResponse, error) {
	env, err := c.roundTrip(TypeObsPull, ObsPullRequest{Trace: traceFilter})
	if err != nil {
		return ObsPullResponse{}, err
	}
	if env.Type != TypeObsPull {
		return ObsPullResponse{}, RemoteErr(env)
	}
	var resp ObsPullResponse
	if err := DecodePayload(env, &resp); err != nil {
		return ObsPullResponse{}, err
	}
	return resp, nil
}

var _ sllocal.RemoteAPI = (*Client)(nil)
