package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/ratls"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
)

// DefaultTimeout bounds the connect and each request/reply round trip for
// clients built with Dial. Without it a hung or partitioned server stalls
// SL-Local forever on a blocking read.
const DefaultTimeout = 10 * time.Second

// maxRedirectHops bounds how many not-leader redirects one logical RPC
// follows before giving up — enough to chase a failover that completes
// mid-request, small enough that a routing loop (two stale servers
// pointing at each other) fails fast instead of ping-ponging.
const maxRedirectHops = 3

// RetryPolicy shapes the dial retry schedule: seeded exponential backoff
// with full jitter. During a failover storm every disconnected client
// redials at once; the jitter spreads the reconnect herd, and the seed
// keeps harness runs reproducible.
type RetryPolicy struct {
	// Attempts is the total number of connect attempts (minimum 1).
	Attempts int
	// Base is the backoff ceiling before the first retry; each further
	// retry doubles it, capped at Max.
	Base time.Duration
	// Max caps the per-retry backoff ceiling.
	Max time.Duration
	// Seed seeds the jitter stream. Two clients with the same policy but
	// different seeds sleep differently — that is the point.
	Seed int64
}

// DefaultRetryPolicy is the production dial schedule: four attempts with
// backoff ceilings of 100ms, 200ms, 400ms.
func DefaultRetryPolicy(seed int64) RetryPolicy {
	return RetryPolicy{Attempts: 4, Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: seed}
}

func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// backoff returns the pause before retry number retry (1-based): a
// uniformly random duration in [0, min(Max, Base·2^(retry-1))] — the
// "full jitter" schedule, which decorrelates a reconnect herd better than
// jittering around the midpoint.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	ceiling := p.Base
	if ceiling <= 0 {
		ceiling = 100 * time.Millisecond
	}
	for i := 1; i < retry; i++ {
		ceiling *= 2
		if p.Max > 0 && ceiling >= p.Max {
			ceiling = p.Max
			break
		}
	}
	if p.Max > 0 && ceiling > p.Max {
		ceiling = p.Max
	}
	return time.Duration(rng.Int63n(int64(ceiling) + 1))
}

// ErrNilChannelConfig reports a Dial or NewServer call without a channel
// config: the caller must choose attested (ratls.New) or explicitly
// plaintext (ratls.Insecure()), never get plaintext by accident.
var ErrNilChannelConfig = errors.New("wire: nil channel config (use ratls.Insecure() for explicit plaintext)")

// Client is the TCP binding of SL-Remote: it implements sllocal.RemoteAPI
// over connections to a wire.Server, so an sllocal.Service runs against a
// real license-server daemon unchanged.
//
// Client pipelines requests: every envelope carries a correlation ID, a
// demux reader goroutine per connection matches responses to waiters, and
// many RPCs can be in flight on one connection at once. It is safe for
// concurrent use; concurrent callers share the pipeline instead of
// queueing behind a per-roundtrip lock. SetPoolSize grows the connection
// pool for callers that want more than one pipe; the default is a single
// connection so handshake-count expectations (cold vs resumed RA-TLS) are
// unchanged from the serialized client.
type Client struct {
	mu       sync.Mutex
	conns    []*clientConn // guardedby: mu — the connection pool for addr
	next     uint64        // guardedby: mu — round-robin cursor over conns
	poolSize int           // guardedby: mu
	addr     string        // guardedby: mu — server the pool speaks to (moves on redirect)
	closed   bool          // guardedby: mu
	rc       *ratls.Config
	timeout  time.Duration
	policy   RetryPolicy
	rng      *rand.Rand // jitter stream; guarded by mu after construction

	nextID      atomic.Uint64 // correlation IDs, client-global so redirects cannot collide
	bytesOut    atomic.Int64
	bytesIn     atomic.Int64
	dialRetries atomic.Int64
	redirects   atomic.Int64
	poolHits    atomic.Int64 // RPCs served by an already-open pooled connection
	poolMisses  atomic.Int64 // RPCs (or redirects) that had to dial
	wrongID     atomic.Int64 // responses bearing an unknown correlation ID, rejected
	metrics     atomic.Pointer[clientMetrics]
}

// clientConn is one pipelined connection: a write mutex serializing
// outgoing frames, and a demux reader goroutine delivering each response
// to the waiter whose correlation ID it carries.
type clientConn struct {
	c net.Conn

	// Outgoing frames coalesce: each send buffers its frame under wmu,
	// and the sender that drops wpend to zero flushes the burst with one
	// Write syscall. A lone request flushes immediately, so sequential
	// callers keep per-RPC latency.
	wpend atomic.Int64
	wmu   sync.Mutex    // serializes frame writes onto bw
	bw    *bufio.Writer // guardedby: wmu — buffers frames onto c

	mu      sync.Mutex
	waiters map[uint64]chan Envelope // guardedby: mu — in-flight requests by ID
	readErr error                    // guardedby: mu — set before done closes
	retired bool                     // guardedby: mu — close once the last waiter drains
	closed  bool                     // guardedby: mu
	done    chan struct{}            // closed when the reader exits

	// Shared counters owned by the parent Client.
	wrongID  *atomic.Int64
	bytesIn  *atomic.Int64
	bytesOut *atomic.Int64
}

// Dial connects to a wire.Server at addr with DefaultTimeout for the
// connect and every round trip. rc selects the channel: an attested
// ratls config for production, ratls.Insecure() for plaintext paths.
func Dial(addr string, rc *ratls.Config) (*Client, error) {
	return DialTimeout(addr, DefaultTimeout, rc)
}

// DialTimeout connects to a wire.Server at addr and runs the channel
// handshake rc prescribes. timeout bounds the connect (TCP plus
// handshake) and each subsequent request/reply round trip; zero disables
// deadlines (blocking semantics). Transient connect failures (timeout,
// refused, unreachable, or a failed channel handshake) are retried on
// DefaultRetryPolicy's jittered exponential backoff, seeded from the
// clock.
func DialTimeout(addr string, timeout time.Duration, rc *ratls.Config) (*Client, error) {
	return DialPolicy(addr, timeout, rc, DefaultRetryPolicy(time.Now().UnixNano()))
}

// DialPolicy is DialTimeout with an explicit retry schedule; harnesses use
// a seeded policy so reconnect storms replay identically.
func DialPolicy(addr string, timeout time.Duration, rc *ratls.Config, policy RetryPolicy) (*Client, error) {
	if rc == nil {
		return nil, ErrNilChannelConfig
	}
	c := &Client{
		timeout:  timeout,
		rc:       rc,
		policy:   policy,
		poolSize: 1,
		rng:      rand.New(rand.NewSource(policy.Seed)),
	}
	cc, err := c.newConn(addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	c.conns = []*clientConn{cc}
	c.addr = addr
	return c, nil
}

// SetPoolSize sets how many pipelined connections the client may open to
// its server (minimum 1; the default). Extra connections are dialed
// lazily on demand and counted as pool misses. Callers that care about
// exact handshake counts (the RA-TLS resumption tests, the chaos
// harness) keep the default single pipe.
func (c *Client) SetPoolSize(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.poolSize = n
	c.mu.Unlock()
}

// dial runs the policy's connect-attempt loop: every transient failure
// costs one jittered backoff and one tick of wire_client_dial_retries_total;
// a non-transient failure (e.g. address resolution) aborts immediately.
func (c *Client) dial(addr string) (net.Conn, error) {
	var err error
	for attempt := 1; attempt <= c.policy.attempts(); attempt++ {
		if attempt > 1 {
			c.dialRetries.Add(1)
			time.Sleep(c.policy.backoff(attempt-1, c.rng))
		}
		var conn net.Conn
		conn, err = c.connect(addr)
		if err == nil {
			return conn, nil
		}
		if !transientDialErr(err) {
			return nil, err
		}
	}
	return nil, err
}

// newConn dials addr and wraps the channel connection in a pipelined
// clientConn with its reader running.
func (c *Client) newConn(addr string) (*clientConn, error) {
	conn, err := c.dial(addr)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{
		c:        conn,
		waiters:  make(map[uint64]chan Envelope),
		done:     make(chan struct{}),
		wrongID:  &c.wrongID,
		bytesIn:  &c.bytesIn,
		bytesOut: &c.bytesOut,
	}
	cc.bw = bufio.NewWriterSize(countWriter{conn, cc.bytesOut}, 32<<10)
	go cc.readLoop()
	return cc, nil
}

// connect performs one TCP connect plus channel handshake. On handshake
// failure ratls has already closed the raw connection.
func (c *Client) connect(addr string) (net.Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, c.timeout)
	if err != nil {
		return nil, err
	}
	return c.rc.Client(raw)
}

// transientDialErr reports whether a connect failure is worth one retry:
// timeouts, kernel-level connection errors (refused, reset, unreachable),
// and channel handshake failures (the peer may have been mid-restart or
// mid-rotation) are; address resolution failures are not.
func transientDialErr(err error) bool {
	if errors.Is(err, ratls.ErrHandshake) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var se *net.OpError
	if errors.As(err, &se) {
		var dns *net.DNSError
		return !errors.As(se.Err, &dns)
	}
	return false
}

// Close shuts every pooled connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	var first error
	for _, cc := range conns {
		if err := cc.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// readLoop is the demux reader: it delivers each response to the waiter
// registered under the response's correlation ID. A response carrying no
// ID or an ID with no waiter (a stale reply after a timeout, or a
// misbehaving server) is counted and dropped — never handed to an
// arbitrary waiter. On read error every pending waiter is failed.
func (cc *clientConn) readLoop() {
	// Mirror of the server's buffered reader: batches of pipelined replies
	// land in one Read instead of two syscalls per frame.
	br := bufio.NewReaderSize(countReader{cc.c, cc.bytesIn}, 32<<10)
	for {
		env, err := ReadMessage(br)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch, ok := cc.waiters[env.ID]
		if ok {
			delete(cc.waiters, env.ID)
		}
		closeNow := cc.retired && len(cc.waiters) == 0 && !cc.closed
		cc.mu.Unlock()
		if !ok {
			cc.wrongID.Add(1)
			continue
		}
		ch <- env // buffered; never blocks
		if closeNow {
			_ = cc.close()
			return
		}
	}
}

// fail marks the connection dead and wakes every pending waiter.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.readErr == nil {
		cc.readErr = err
		close(cc.done)
	}
	cc.waiters = nil
	cc.mu.Unlock()
	_ = cc.close()
}

// lastErr returns the reader's terminal error (nil while the connection
// is live).
func (cc *clientConn) lastErr() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.readErr
}

// load returns how many requests are in flight.
func (cc *clientConn) load() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.waiters)
}

// register claims a waiter slot for a correlation ID.
func (cc *clientConn) register(id uint64) (chan Envelope, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.readErr != nil {
		return nil, cc.readErr
	}
	if cc.closed || cc.retired {
		return nil, net.ErrClosed
	}
	ch := make(chan Envelope, 1)
	cc.waiters[id] = ch
	return ch, nil
}

// unregister abandons a waiter (send failure or timeout); the conn closes
// if it was retired and this was the last one.
func (cc *clientConn) unregister(id uint64) {
	cc.mu.Lock()
	delete(cc.waiters, id)
	closeNow := cc.retired && len(cc.waiters) == 0 && !cc.closed
	cc.mu.Unlock()
	if closeNow {
		_ = cc.close()
	}
}

// retire schedules the connection to close as soon as its in-flight
// requests drain (immediately when idle). Redirected-away connections are
// retired, not cut, so sibling RPCs racing the redirect still get their
// answers.
func (cc *clientConn) retire() {
	cc.mu.Lock()
	cc.retired = true
	closeNow := len(cc.waiters) == 0 && !cc.closed
	cc.mu.Unlock()
	if closeNow {
		_ = cc.close()
	}
}

// close closes the underlying connection exactly once.
func (cc *clientConn) close() error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	cc.mu.Unlock()
	return cc.c.Close()
}

// send writes one framed request; the write deadline bounds a peer that
// stopped reading.
func (cc *clientConn) send(id uint64, msgType string, payload any, tc *TraceContext, timeout time.Duration) error {
	cc.wpend.Add(1)
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if timeout > 0 {
		_ = cc.c.SetWriteDeadline(time.Now().Add(timeout))
	}
	err := WriteMessageID(cc.bw, msgType, id, payload, tc)
	if cc.wpend.Add(-1) == 0 {
		// Last sender in the burst: pay the one Write syscall for every
		// coalesced frame. A sender that skips this has a successor
		// already queued on wmu who will flush for it.
		if ferr := cc.bw.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// acquire picks a pooled connection for one RPC: the least-loaded live
// connection when one exists (a pool hit), growing the pool up to
// poolSize by dialing (a pool miss). A pool whose connections all died
// surfaces the first reader error — reconnecting is the caller's policy
// (chaos harnesses redial; redirects dial through the pool).
func (c *Client) acquire() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, net.ErrClosed
	}
	var best *clientConn
	bestLoad := 0
	var firstErr error
	for _, cc := range c.conns {
		if err := cc.lastErr(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if l := cc.load(); best == nil || l < bestLoad {
			best, bestLoad = cc, l
		}
	}
	if best != nil && (bestLoad == 0 || len(c.conns) >= c.poolSize) {
		c.mu.Unlock()
		c.poolHits.Add(1)
		return best, nil
	}
	if len(c.conns) < c.poolSize {
		cc, err := c.newConn(c.addr)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		c.conns = append(c.conns, cc)
		c.mu.Unlock()
		c.poolMisses.Add(1)
		return cc, nil
	}
	c.mu.Unlock()
	if firstErr == nil {
		firstErr = net.ErrClosed
	}
	return nil, firstErr
}

// roundTrip sends one request and reads the reply, bounded by the client's
// per-roundtrip deadline.
func (c *Client) roundTrip(msgType string, payload any) (Envelope, error) {
	return c.roundTripSpan(nil, msgType, payload)
}

// roundTripSpan is roundTrip under an optional caller span. The RPC gets
// its own span — a child of parent when given, else a root span from the
// client tracer — and the span's context is injected into the outgoing
// envelope so the server's handler span joins the same trace.
func (c *Client) roundTripSpan(parent *obs.Span, msgType string, payload any) (Envelope, error) {
	return c.roundTripConn(nil, parent, msgType, payload)
}

// roundTripConn is roundTripSpan pinned to a specific pooled connection
// (nil cc acquires one): the escrow path must seal its payload for the
// very connection the request leaves on.
func (c *Client) roundTripConn(cc *clientConn, parent *obs.Span, msgType string, payload any) (Envelope, error) {
	m := c.metrics.Load()
	label := rpcLabel(msgType)
	var span *obs.Span
	if parent != nil {
		span = parent.Child("rpc." + label)
	} else if m != nil {
		span = m.tracer.Start("rpc." + label)
	}
	var tc *TraceContext
	if sc := span.Context(); !sc.Trace.IsZero() {
		tc = &TraceContext{TraceID: sc.Trace.String(), SpanID: sc.Span}
	}
	start := time.Now()
	var env Envelope
	var err error
	if cc == nil {
		cc, err = c.acquire()
	}
	if err == nil {
		env, err = c.doOn(cc, msgType, payload, tc)
	}
	if m != nil {
		rm := m.forType(label)
		rm.rpcs.Inc()
		rm.latency.Observe(time.Since(start).Seconds())
		if err != nil {
			rm.errors.Inc()
		}
	}
	span.End(err)
	return env, err
}

// doOn runs one pipelined exchange on cc: register a waiter under a fresh
// correlation ID, write the frame, and wait for the demux reader to
// deliver the correlated reply, the connection to die, or the
// per-roundtrip deadline to pass.
func (c *Client) doOn(cc *clientConn, msgType string, payload any, tc *TraceContext) (Envelope, error) {
	id := c.nextID.Add(1)
	ch, err := cc.register(id)
	if err != nil {
		return Envelope{}, err
	}
	if err := cc.send(id, msgType, payload, tc, c.timeout); err != nil {
		cc.unregister(id)
		return Envelope{}, err
	}
	var timeoutC <-chan time.Time
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case env := <-ch:
		return env, nil
	case <-cc.done:
		// A reply may have been delivered in the same instant the reader
		// died; prefer it.
		select {
		case env := <-ch:
			return env, nil
		default:
		}
		return Envelope{}, cc.lastErr()
	case <-timeoutC:
		cc.unregister(id)
		select {
		case env := <-ch:
			return env, nil
		default:
		}
		return Envelope{}, fmt.Errorf("wire: %s round trip: %w", msgType, os.ErrDeadlineExceeded)
	}
}

// roundTripRoute is roundTripSpan for license-scoped requests against a
// sharded cluster: a TypeNotLeader reply re-points the connection pool at
// the named leader and retries, so SL-Local re-routes transparently across
// failovers. Hops are bounded; a loop of stale servers or a leaderless
// shard surfaces as ErrNotLeader.
func (c *Client) roundTripRoute(parent *obs.Span, msgType string, payload any) (Envelope, error) {
	for hop := 0; ; hop++ {
		env, err := c.roundTripSpan(parent, msgType, payload)
		if err != nil || env.Type != TypeNotLeader {
			return env, err
		}
		var nl NotLeaderResponse
		if err := DecodePayload(env, &nl); err != nil {
			return Envelope{}, err
		}
		if hop >= maxRedirectHops || nl.Leader == "" {
			return Envelope{}, fmt.Errorf("%w: license %q (leader %q, epoch %d, %d hops)",
				ErrNotLeader, nl.License, nl.Leader, nl.Epoch, hop+1)
		}
		if err := c.redirect(nl.Leader); err != nil {
			return Envelope{}, err
		}
	}
}

// redirect re-points the connection pool at addr (with the dial policy's
// backoff). The old pool is retired, not cut: redirected-away connections
// finish their in-flight requests and close when they drain, so a
// redirect hop never strands a sibling RPC's reply. The replacement dial
// is counted as a pool miss. A no-op when another RPC already moved there.
func (c *Client) redirect(addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if addr == c.addr {
		return nil
	}
	cc, err := c.newConn(addr)
	if err != nil {
		return fmt.Errorf("wire: redirecting to %s: %w", addr, err)
	}
	c.poolMisses.Add(1)
	old := c.conns
	c.conns = []*clientConn{cc}
	c.addr = addr
	for _, o := range old {
		o.retire()
	}
	c.redirects.Add(1)
	return nil
}

// InitClient implements sllocal.RemoteAPI over the wire. The remote
// attestation's multi-second latency is charged to the client machine
// (the server side cannot reach its clock).
func (c *Client) InitClient(slid string, quote attest.Quote, clientMachine *sgx.Machine) (slremote.InitResult, error) {
	return c.InitClientSpan(nil, slid, quote, clientMachine)
}

// InitClientSpan is InitClient with the RPC span linked under parent, so
// the whole init handshake shares the caller's TraceID (sllocal uses this
// via its traced-remote binding).
func (c *Client) InitClientSpan(parent *obs.Span, slid string, quote attest.Quote, clientMachine *sgx.Machine) (slremote.InitResult, error) {
	if clientMachine != nil {
		clientMachine.ChargeRemoteAttestation()
	}
	env, err := c.roundTripSpan(parent, TypeInit, InitRequest{SLID: slid, Quote: quote})
	if err != nil {
		return slremote.InitResult{}, err
	}
	if env.Type != TypeInit {
		return slremote.InitResult{}, RemoteErr(env)
	}
	var resp InitResponse
	if err := DecodePayload(env, &resp); err != nil {
		return slremote.InitResult{}, err
	}
	out := slremote.InitResult{SLID: resp.SLID, HasOBK: resp.HasOBK}
	if resp.HasOBK {
		key, err := seccrypto.KeyFromBytes(resp.OBK)
		if err != nil {
			return slremote.InitResult{}, fmt.Errorf("wire: decoding OBK: %w", err)
		}
		out.OBK = key
	}
	return out, nil
}

// RenewLease implements sllocal.RemoteAPI over the wire.
func (c *Client) RenewLease(slid, licenseID string) (slremote.Grant, error) {
	return c.RenewLeaseSpan(nil, slid, licenseID)
}

// RenewLeaseSpan is RenewLease with the RPC span linked under parent.
func (c *Client) RenewLeaseSpan(parent *obs.Span, slid, licenseID string) (slremote.Grant, error) {
	env, err := c.roundTripRoute(parent, TypeRenew, RenewRequest{SLID: slid, License: licenseID})
	if err != nil {
		return slremote.Grant{}, err
	}
	if env.Type != TypeRenew {
		return slremote.Grant{}, RemoteErr(env)
	}
	var resp RenewResponse
	if err := DecodePayload(env, &resp); err != nil {
		return slremote.Grant{}, err
	}
	grant := slremote.Grant{License: licenseID, Units: resp.Units}
	grant.GCL.Kind = lease.Kind(resp.Kind)
	grant.GCL.Counter = resp.Counter
	grant.GCL.Interval = time.Duration(resp.IntervalNS)
	return grant, nil
}

// EscrowRootKey implements sllocal.RemoteAPI over the wire.
func (c *Client) EscrowRootKey(slid string, key seccrypto.Key) error {
	return c.EscrowRootKeySpan(nil, slid, key)
}

// EscrowRootKeySpan is EscrowRootKey with the RPC span linked under parent.
func (c *Client) EscrowRootKeySpan(parent *obs.Span, slid string, key seccrypto.Key) error {
	// SealForChannel releases the key only into an attested (or explicitly
	// insecure) connection; a plain net.Conn is refused at runtime. The
	// request is pinned to the very connection the key was sealed for.
	cc, err := c.acquire()
	if err != nil {
		return err
	}
	sealed, err := ratls.SealForChannel(key, cc.c)
	if err != nil {
		return err
	}
	env, err := c.roundTripConn(cc, parent, TypeEscrow, EscrowRequest{SLID: slid, Key: sealed})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// RegisterLicense registers a license on the remote server (admin). In a
// sharded cluster the request follows redirects to the license's owning
// shard.
func (c *Client) RegisterLicense(id string, kind uint8, totalGCL int64) error {
	env, err := c.roundTripRoute(nil, TypeRegisterLicense, RegisterLicenseRequest{ID: id, Kind: kind, TotalGCL: totalGCL})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// ReportCrash reports a crashed SL-Local (admin/monitor).
func (c *Client) ReportCrash(slid string) error {
	env, err := c.roundTrip(TypeReportCrash, ReportCrashRequest{SLID: slid})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// SetProfile updates a client's Algorithm 1 inputs (admin/monitor).
func (c *Client) SetProfile(slid string, health, reliability, weight float64) error {
	env, err := c.roundTrip(TypeSetProfile, SetProfileRequest{
		SLID: slid, Health: health, Reliability: reliability, Weight: weight,
	})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// ConsumeReport reports spent units so the server's outstanding view (and
// the conservation ledger behind it) tracks reality.
func (c *Client) ConsumeReport(slid, licenseID string, units int64) error {
	env, err := c.roundTripRoute(nil, TypeConsume, ConsumeRequest{SLID: slid, License: licenseID, Units: units})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// LicenseInfo fetches license state (admin), following shard redirects.
func (c *Client) LicenseInfo(id string) (LicenseInfoResponse, error) {
	env, err := c.roundTripRoute(nil, TypeLicenseInfo, LicenseInfoRequest{ID: id})
	if err != nil {
		return LicenseInfoResponse{}, err
	}
	if env.Type != TypeLicenseInfo {
		return LicenseInfoResponse{}, RemoteErr(env)
	}
	var resp LicenseInfoResponse
	if err := DecodePayload(env, &resp); err != nil {
		return LicenseInfoResponse{}, err
	}
	return resp, nil
}

// ReplPull fetches one replication batch: the server's durable WAL
// records after position (gen, offset). Followers call it in a loop,
// advancing their position by the returned NextOffset.
func (c *Client) ReplPull(gen uint64, offset int64, maxBytes int) (ReplBatchResponse, error) {
	env, err := c.roundTrip(TypeReplPull, ReplPullRequest{Gen: gen, Offset: offset, MaxBytes: maxBytes})
	if err != nil {
		return ReplBatchResponse{}, err
	}
	if env.Type != TypeReplBatch {
		return ReplBatchResponse{}, RemoteErr(env)
	}
	var resp ReplBatchResponse
	if err := DecodePayload(env, &resp); err != nil {
		return ReplBatchResponse{}, err
	}
	return resp, nil
}

// ObsPull fetches the server's observability snapshot (metric export,
// trace dump, flight dump) over the channel. traceFilter, when non-empty,
// narrows the trace dump to one hex TraceID.
func (c *Client) ObsPull(traceFilter string) (ObsPullResponse, error) {
	env, err := c.roundTrip(TypeObsPull, ObsPullRequest{Trace: traceFilter})
	if err != nil {
		return ObsPullResponse{}, err
	}
	if env.Type != TypeObsPull {
		return ObsPullResponse{}, RemoteErr(env)
	}
	var resp ObsPullResponse
	if err := DecodePayload(env, &resp); err != nil {
		return ObsPullResponse{}, err
	}
	return resp, nil
}

var _ sllocal.RemoteAPI = (*Client)(nil)
