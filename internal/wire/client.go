package wire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slremote"
)

// Client is the TCP binding of SL-Remote: it implements sllocal.RemoteAPI
// over a connection to a wire.Server, so an sllocal.Service runs against a
// real license-server daemon unchanged.
//
// Client serializes requests on one connection; it is safe for concurrent
// use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a wire.Server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and reads the reply.
func (c *Client) roundTrip(msgType string, payload any) (Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteMessage(c.conn, msgType, payload); err != nil {
		return Envelope{}, err
	}
	return ReadMessage(c.conn)
}

// InitClient implements sllocal.RemoteAPI over the wire. The remote
// attestation's multi-second latency is charged to the client machine
// (the server side cannot reach its clock).
func (c *Client) InitClient(slid string, quote attest.Quote, clientMachine *sgx.Machine) (slremote.InitResult, error) {
	if clientMachine != nil {
		clientMachine.ChargeRemoteAttestation()
	}
	env, err := c.roundTrip(TypeInit, InitRequest{SLID: slid, Quote: encodeQuote(quote)})
	if err != nil {
		return slremote.InitResult{}, err
	}
	if env.Type != TypeInit {
		return slremote.InitResult{}, RemoteErr(env)
	}
	var resp InitResponse
	if err := DecodePayload(env, &resp); err != nil {
		return slremote.InitResult{}, err
	}
	out := slremote.InitResult{SLID: resp.SLID, HasOBK: resp.HasOBK}
	if resp.HasOBK {
		key, err := seccrypto.KeyFromBytes(resp.OBK)
		if err != nil {
			return slremote.InitResult{}, fmt.Errorf("wire: decoding OBK: %w", err)
		}
		out.OBK = key
	}
	return out, nil
}

// RenewLease implements sllocal.RemoteAPI over the wire.
func (c *Client) RenewLease(slid, licenseID string) (slremote.Grant, error) {
	env, err := c.roundTrip(TypeRenew, RenewRequest{SLID: slid, License: licenseID})
	if err != nil {
		return slremote.Grant{}, err
	}
	if env.Type != TypeRenew {
		return slremote.Grant{}, RemoteErr(env)
	}
	var resp RenewResponse
	if err := DecodePayload(env, &resp); err != nil {
		return slremote.Grant{}, err
	}
	grant := slremote.Grant{License: licenseID, Units: resp.Units}
	grant.GCL.Kind = lease.Kind(resp.Kind)
	grant.GCL.Counter = resp.Counter
	grant.GCL.Interval = time.Duration(resp.IntervalNS)
	return grant, nil
}

// EscrowRootKey implements sllocal.RemoteAPI over the wire.
func (c *Client) EscrowRootKey(slid string, key seccrypto.Key) error {
	env, err := c.roundTrip(TypeEscrow, EscrowRequest{SLID: slid, Key: key.Bytes()})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// RegisterLicense registers a license on the remote server (admin).
func (c *Client) RegisterLicense(id string, kind uint8, totalGCL int64) error {
	env, err := c.roundTrip(TypeRegisterLicense, RegisterLicenseRequest{ID: id, Kind: kind, TotalGCL: totalGCL})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// ReportCrash reports a crashed SL-Local (admin/monitor).
func (c *Client) ReportCrash(slid string) error {
	env, err := c.roundTrip(TypeReportCrash, ReportCrashRequest{SLID: slid})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// SetProfile updates a client's Algorithm 1 inputs (admin/monitor).
func (c *Client) SetProfile(slid string, health, reliability, weight float64) error {
	env, err := c.roundTrip(TypeSetProfile, SetProfileRequest{
		SLID: slid, Health: health, Reliability: reliability, Weight: weight,
	})
	if err != nil {
		return err
	}
	if env.Type != TypeOK {
		return RemoteErr(env)
	}
	return nil
}

// LicenseInfo fetches license state (admin).
func (c *Client) LicenseInfo(id string) (LicenseInfoResponse, error) {
	env, err := c.roundTrip(TypeLicenseInfo, LicenseInfoRequest{ID: id})
	if err != nil {
		return LicenseInfoResponse{}, err
	}
	if env.Type != TypeLicenseInfo {
		return LicenseInfoResponse{}, RemoteErr(env)
	}
	var resp LicenseInfoResponse
	if err := DecodePayload(env, &resp); err != nil {
		return LicenseInfoResponse{}, err
	}
	return resp, nil
}

var _ sllocal.RemoteAPI = (*Client)(nil)
