package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/sllocal"
)

// Example shows the minimal SecureLease deployment: one system, one
// license, one guarded key function.
func Example() {
	sys, _ := core.NewSystem(core.Config{})
	_ = sys.RegisterLicense("lic-demo", lease.CountBased, 2)

	app, _ := sys.LaunchApp("demo")
	app.Guard("render", "lic-demo")

	for i := 0; i < 3; i++ {
		err := app.Execute("render", func() error { return nil })
		fmt.Printf("run %d ok=%v\n", i+1, err == nil)
	}
	// Output:
	// run 1 ok=true
	// run 2 ok=true
	// run 3 ok=false
}

// Example_restart shows graceful shutdown and restore: the lease tree is
// committed and escrowed, and counters survive the restart exactly.
// TokenBatch is 1 so no grants sit in the SL-Manager's cache at shutdown
// (cached grants die with the application enclave, by design).
func Example_restart() {
	sys, _ := core.NewSystem(core.Config{
		Local: sllocal.Config{TokenBatch: 1, MemoryBudget: 1600 << 10},
	})
	_ = sys.RegisterLicense("lic", lease.CountBased, 10)
	app, _ := sys.LaunchApp("tool")
	app.Guard("f", "lic")
	_ = app.Execute("f", func() error { return nil })

	_ = sys.Shutdown()
	_ = sys.Restart()

	app, _ = sys.LaunchApp("tool")
	app.Guard("f", "lic")
	used := 1
	for app.Execute("f", func() error { return nil }) == nil {
		used++
	}
	fmt.Println("total executions:", used)
	// Output:
	// total executions: 10
}
