// Package core is the public façade of the SecureLease reproduction: it
// wires a complete deployment — a simulated SGX machine, its attestation
// platform, the SL-Remote license server, the SL-Local lease service, and
// any number of protected applications with their SL-Managers — behind one
// coherent API.
//
// A minimal licensed application looks like:
//
//	sys, _ := core.NewSystem(core.Config{})
//	_ = sys.RegisterLicense("lic-demo", lease.CountBased, 1000)
//	app, _ := sys.LaunchApp("demo")
//	app.Guard("render", "lic-demo")
//	_ = app.Execute("render", func() error { ...protected logic... ; return nil })
//
// The partition, workloads, harness, and attack packages build on the same
// components for the paper's experiments; core is the deployment story.
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/netsim"
	"repro/internal/sgx"
	"repro/internal/sllocal"
	"repro/internal/slmanager"
	"repro/internal/slremote"
)

// Config assembles one SecureLease deployment. The zero value is a
// sensible single-machine setup with the paper's parameters.
type Config struct {
	// MachineName labels the client machine.
	MachineName string
	// EPCBytes overrides the EPC size (default ~92 MB).
	EPCBytes int64
	// Model overrides the SGX cost model.
	Model sgx.CostModel
	// Local tunes SL-Local (default: 10-token batches, 1.6 MB budget).
	Local sllocal.Config
	// Remote tunes SL-Remote's Algorithm 1 (default: the paper's D=4,
	// T_H=0.9, β=0.01, τ=10%).
	Remote slremote.Config
	// Network, if non-nil, interposes a simulated link between SL-Local
	// and SL-Remote.
	Network *netsim.LinkConfig
}

// System is one client machine running SecureLease plus its (bound)
// license server. Systems are safe for concurrent use.
type System struct {
	machine  *sgx.Machine
	platform *attest.Platform
	service  *attest.Service
	remote   *slremote.Server
	local    *sllocal.Service
	link     *netsim.Link
	state    *sllocal.UntrustedState
	cfgLocal sllocal.Config

	mu   sync.Mutex
	apps map[string]*App
}

// App is one protected application: an enclave for its secure region plus
// the SL-Manager guarding its key functions.
type App struct {
	name    string
	enclave *sgx.Enclave
	manager *slmanager.Manager
}

// NewSystem builds and initializes a full deployment: machine, platform,
// attestation service (with SL-Local's measurement trusted), SL-Remote,
// and an initialized SL-Local.
func NewSystem(cfg Config) (*System, error) {
	if cfg.MachineName == "" {
		cfg.MachineName = "client"
	}
	if cfg.Remote == (slremote.Config{}) {
		cfg.Remote = slremote.DefaultConfig()
	}
	if cfg.Local == (sllocal.Config{}) {
		cfg.Local = sllocal.DefaultConfig()
	}
	machine, err := sgx.NewMachine(sgx.MachineConfig{
		Name:     cfg.MachineName,
		EPCBytes: cfg.EPCBytes,
		Model:    cfg.Model,
	})
	if err != nil {
		return nil, fmt.Errorf("core: machine: %w", err)
	}
	platform, err := attest.NewPlatform(cfg.MachineName, machine)
	if err != nil {
		return nil, fmt.Errorf("core: platform: %w", err)
	}
	service := attest.NewService()
	service.RegisterPlatform(platform)

	remote, err := slremote.NewServer(cfg.Remote, service)
	if err != nil {
		return nil, fmt.Errorf("core: SL-Remote: %w", err)
	}

	var link *netsim.Link
	if cfg.Network != nil {
		link = netsim.NewLink(*cfg.Network)
	}

	sys := &System{
		machine:  machine,
		platform: platform,
		service:  service,
		remote:   remote,
		link:     link,
		state:    &sllocal.UntrustedState{},
		cfgLocal: cfg.Local,
		apps:     make(map[string]*App),
	}
	if err := sys.startLocalLocked(); err != nil {
		return nil, err
	}
	return sys, nil
}

// startLocalLocked builds and initializes a fresh SL-Local over the
// persistent untrusted state. s.mu must be held (or s still unpublished,
// as in New): it installs s.local, which Shutdown/Crash/Running read
// under the same lock.
func (s *System) startLocalLocked() error {
	local, err := sllocal.New(s.cfgLocal, sllocal.Deps{
		Machine:  s.machine,
		Platform: s.platform,
		Remote:   s.remote,
		Link:     s.link,
		State:    s.state,
	})
	if err != nil {
		return fmt.Errorf("core: SL-Local: %w", err)
	}
	// Trust the SL-Local enclave's measurement so remote attestation at
	// init succeeds: derive the measurement from a probe enclave with the
	// same code identity.
	probe, err := s.machine.CreateEnclave("sl-local-probe", sllocal.EnclaveCodeIdentity, 0)
	if err != nil {
		return fmt.Errorf("core: probe enclave: %w", err)
	}
	s.service.TrustMeasurement(probe.Measurement())
	probe.Destroy()

	if err := local.Init(); err != nil {
		return fmt.Errorf("core: initializing SL-Local: %w", err)
	}
	s.local = local
	return nil
}

// Machine returns the simulated client machine.
func (s *System) Machine() *sgx.Machine { return s.machine }

// Remote returns the license server.
func (s *System) Remote() *slremote.Server { return s.remote }

// Local returns the SL-Local service.
func (s *System) Local() *sllocal.Service {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local
}

// Link returns the simulated network link (nil if none configured).
func (s *System) Link() *netsim.Link { return s.link }

// RegisterLicense registers a license with the server.
func (s *System) RegisterLicense(id string, kind lease.Kind, totalGCL int64) error {
	return s.remote.RegisterLicense(id, kind, totalGCL)
}

// LaunchApp creates a protected application: its secure-region enclave and
// SL-Manager.
func (s *System) LaunchApp(name string) (*App, error) {
	if name == "" {
		return nil, errors.New("core: empty app name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.apps[name]; dup {
		return nil, fmt.Errorf("core: app %q already launched", name)
	}
	if s.local == nil {
		return nil, errors.New("core: SL-Local is not running")
	}
	enclave, err := s.machine.CreateEnclave(name+"-secure", []byte("app-code/"+name), 0)
	if err != nil {
		return nil, fmt.Errorf("core: app enclave: %w", err)
	}
	manager, err := slmanager.New(enclave, s.local)
	if err != nil {
		enclave.Destroy()
		return nil, fmt.Errorf("core: SL-Manager: %w", err)
	}
	app := &App{name: name, enclave: enclave, manager: manager}
	s.apps[name] = app
	return app, nil
}

// App returns a launched application by name, or nil.
func (s *System) App(name string) *App {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apps[name]
}

// Shutdown gracefully stops SL-Local (committing and escrowing the lease
// tree) and destroys all application enclaves. The System can be restarted
// with Restart.
func (s *System) Shutdown() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.local == nil {
		return errors.New("core: already shut down")
	}
	if err := s.local.Shutdown(); err != nil {
		return err
	}
	s.teardownAppsLocked()
	s.local = nil
	return nil
}

// Crash simulates an abrupt machine failure: nothing is committed and
// every lease held locally will be forfeited at the next restart.
func (s *System) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.local != nil {
		s.local.Crash()
		s.local = nil
	}
	s.teardownAppsLocked()
}

// Restart brings SL-Local back up over the persisted untrusted state
// (restoring the lease tree after a graceful shutdown; starting fresh
// after a crash).
func (s *System) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.local != nil {
		return errors.New("core: system is running")
	}
	return s.startLocalLocked()
}

// Running reports whether SL-Local is up.
func (s *System) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local != nil
}

func (s *System) teardownAppsLocked() {
	for name, app := range s.apps {
		app.enclave.Destroy()
		delete(s.apps, name)
	}
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Enclave returns the application's secure-region enclave.
func (a *App) Enclave() *sgx.Enclave { return a.enclave }

// Manager returns the application's SL-Manager.
func (a *App) Manager() *slmanager.Manager { return a.manager }

// Guard registers a key function under a license.
func (a *App) Guard(function, licenseID string) {
	a.manager.Guard(function, licenseID)
}

// Execute runs a guarded key function inside the enclave after lease
// authorization — the only path to protected logic.
func (a *App) Execute(function string, fn func() error) error {
	return a.manager.Execute(function, fn)
}

// Authorize obtains an execution grant for a license without running a
// function (for callers that gate larger regions manually).
func (a *App) Authorize(licenseID string) error {
	return a.manager.Authorize(licenseID)
}
