package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/lease"
	"repro/internal/netsim"
	"repro/internal/slmanager"
)

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestSystemLifecycle(t *testing.T) {
	sys := newSystem(t, Config{})
	if !sys.Running() {
		t.Fatal("system not running after NewSystem")
	}
	if sys.Machine() == nil || sys.Remote() == nil || sys.Local() == nil {
		t.Fatal("missing components")
	}
	if err := sys.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	app, err := sys.LaunchApp("demo")
	if err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if sys.App("demo") != app || sys.App("ghost") != nil {
		t.Fatal("App lookup wrong")
	}
	app.Guard("render", "lic")
	ran := false
	if err := app.Execute("render", func() error { ran = true; return nil }); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !ran {
		t.Fatal("key function did not run")
	}
	if err := app.Authorize("lic"); err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if app.Name() != "demo" || app.Enclave() == nil || app.Manager() == nil {
		t.Fatal("app accessors wrong")
	}
}

func TestLaunchAppValidation(t *testing.T) {
	sys := newSystem(t, Config{})
	if _, err := sys.LaunchApp(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := sys.LaunchApp("a"); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	if _, err := sys.LaunchApp("a"); err == nil {
		t.Fatal("duplicate app accepted")
	}
}

func TestShutdownRestartPreservesLeases(t *testing.T) {
	sys := newSystem(t, Config{})
	if err := sys.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	app, err := sys.LaunchApp("demo")
	if err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	app.Guard("f", "lic")
	if err := app.Execute("f", nil); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	slid := sys.Local().SLID()
	outstanding := sys.Remote().Outstanding(slid, "lic")
	if outstanding == 0 {
		t.Fatal("no outstanding leases")
	}
	if err := sys.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if sys.Running() {
		t.Fatal("still running after Shutdown")
	}
	if err := sys.Shutdown(); err == nil {
		t.Fatal("double Shutdown accepted")
	}
	if _, err := sys.LaunchApp("late"); err == nil {
		t.Fatal("LaunchApp while down accepted")
	}
	if err := sys.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if err := sys.Restart(); err == nil {
		t.Fatal("double Restart accepted")
	}
	// Same SLID, leases intact.
	if got := sys.Local().SLID(); got != slid {
		t.Fatalf("SLID changed: %q → %q", slid, got)
	}
	if got := sys.Remote().Outstanding(slid, "lic"); got != outstanding {
		t.Fatalf("outstanding changed: %d → %d", outstanding, got)
	}
	// Apps must be relaunched after restart.
	app2, err := sys.LaunchApp("demo")
	if err != nil {
		t.Fatalf("relaunch: %v", err)
	}
	app2.Guard("f", "lic")
	if err := app2.Execute("f", nil); err != nil {
		t.Fatalf("post-restart Execute: %v", err)
	}
	if got := sys.Local().Stats().Renewals; got != 0 {
		t.Fatalf("renewals after graceful restart = %d, want 0", got)
	}
}

func TestCrashForfeits(t *testing.T) {
	sys := newSystem(t, Config{})
	if err := sys.RegisterLicense("lic", lease.CountBased, 1000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	app, err := sys.LaunchApp("demo")
	if err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	app.Guard("f", "lic")
	if err := app.Execute("f", nil); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	slid := sys.Local().SLID()
	held := sys.Remote().Outstanding(slid, "lic")
	sys.Crash()
	sys.Crash() // idempotent
	if sys.Running() {
		t.Fatal("running after crash")
	}
	if err := sys.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	lic, err := sys.Remote().License("lic")
	if err != nil {
		t.Fatalf("License: %v", err)
	}
	if lic.Lost != held {
		t.Fatalf("lost = %d, want %d", lic.Lost, held)
	}
}

func TestDenialWithoutLicense(t *testing.T) {
	sys := newSystem(t, Config{})
	app, err := sys.LaunchApp("demo")
	if err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	app.Guard("f", "lic-unregistered")
	if err := app.Execute("f", nil); !errors.Is(err, slmanager.ErrNoLease) {
		t.Fatalf("unlicensed Execute: %v", err)
	}
}

func TestNetworkedSystemSurvivesOutage(t *testing.T) {
	sys := newSystem(t, Config{
		Network: &netsim.LinkConfig{Reliability: 1, Seed: 1},
	})
	if err := sys.RegisterLicense("lic", lease.CountBased, 100_000); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	app, err := sys.LaunchApp("demo")
	if err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	app.Guard("f", "lic")
	if err := app.Execute("f", nil); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sys.Link().SetDown(true)
	// Cached sub-GCL keeps the app running offline.
	for i := 0; i < 100; i++ {
		if err := app.Execute("f", nil); err != nil {
			t.Fatalf("offline Execute %d: %v", i, err)
		}
	}
}

func TestConcurrentAppsShareLocal(t *testing.T) {
	sys := newSystem(t, Config{})
	for _, lic := range []string{"lic-a", "lic-b", "lic-c", "lic-d"} {
		if err := sys.RegisterLicense(lic, lease.CountBased, 1_000_000); err != nil {
			t.Fatalf("RegisterLicense: %v", err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i, lic := range []string{"lic-a", "lic-b", "lic-c", "lic-d"} {
		app, err := sys.LaunchApp("app-" + lic)
		if err != nil {
			t.Fatalf("LaunchApp: %v", err)
		}
		app.Guard("f", lic)
		wg.Add(1)
		go func(i int, app *App) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if err := app.Execute("f", nil); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, app)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
	}
}

func TestCustomEPCAndBadConfig(t *testing.T) {
	sys := newSystem(t, Config{EPCBytes: 4 << 20})
	if got := sys.Machine().EPCCapacityPages(); got != (4<<20)/4096 {
		t.Fatalf("EPC pages = %d", got)
	}
	if _, err := NewSystem(Config{EPCBytes: 1}); err == nil {
		t.Fatal("sub-page EPC accepted")
	}
}
