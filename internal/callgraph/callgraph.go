// Package callgraph models an application's control-flow graph at function
// granularity, as used by SecureLease's partitioning algorithm (Section 4.2
// of the paper): nodes are functions, directed weighted edges are calls.
//
// Each function carries the attributes partitioning needs: static code
// size, runtime memory footprint (estimated via the proc interface in the
// paper), its source module (the paper's observation is that modules show
// up as dense clusters in the CFG), whether it belongs to the
// authentication module, whether the developer annotated it as a key
// function, and whether it touches sensitive data (the annotation the
// Glamdring baseline partitions on).
package callgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one function in the graph.
type Node struct {
	// Name is the unique function name.
	Name string
	// CodeBytes is the function's static code size (drives the paper's
	// "static coverage" metric).
	CodeBytes int64
	// MemoryBytes is the function's runtime memory footprint (drives EPC
	// sizing; estimated from /proc in the paper).
	MemoryBytes int64
	// Module is the submodule the function belongs to (ground truth used
	// to seed workload generation; the partitioner does not read it).
	Module string
	// AuthModule marks authentication-module functions.
	AuthModule bool
	// KeyFunction marks developer-annotated key functions (Section 4.2.1).
	KeyFunction bool
	// TouchesSensitive marks functions that access developer-annotated
	// sensitive data (the Glamdring criterion).
	TouchesSensitive bool
}

// Edge is a directed call edge with a call-count weight.
type Edge struct {
	From, To string
	// Count is the number of (static or profiled) call sites × frequency;
	// partitioners treat it as the edge weight.
	Count int64
}

// Graph is a directed call graph. It is not safe for concurrent mutation;
// build it once, then share read-only.
type Graph struct {
	nodes map[string]*Node
	out   map[string]map[string]int64
	in    map[string]map[string]int64
	order []string // insertion order for deterministic iteration
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]*Node),
		out:   make(map[string]map[string]int64),
		in:    make(map[string]map[string]int64),
	}
}

// AddNode inserts a function; re-adding a name replaces its attributes but
// keeps its edges.
func (g *Graph) AddNode(n Node) error {
	if n.Name == "" {
		return fmt.Errorf("callgraph: empty function name")
	}
	if _, exists := g.nodes[n.Name]; !exists {
		g.order = append(g.order, n.Name)
	}
	copied := n
	g.nodes[n.Name] = &copied
	return nil
}

// AddCall adds weight to the edge from→to, creating it as needed. Both
// endpoints must exist.
func (g *Graph) AddCall(from, to string, count int64) error {
	if count <= 0 {
		return fmt.Errorf("callgraph: non-positive call count %d", count)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("callgraph: unknown caller %q", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("callgraph: unknown callee %q", to)
	}
	if g.out[from] == nil {
		g.out[from] = make(map[string]int64)
	}
	g.out[from][to] += count
	if g.in[to] == nil {
		g.in[to] = make(map[string]int64)
	}
	g.in[to][from] += count
	return nil
}

// Node returns the node, or nil.
func (g *Graph) Node(name string) *Node {
	return g.nodes[name]
}

// Len returns the number of functions.
func (g *Graph) Len() int { return len(g.nodes) }

// Names returns all function names in insertion order.
func (g *Graph) Names() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Edges returns all edges, ordered deterministically.
func (g *Graph) Edges() []Edge {
	var edges []Edge
	for _, from := range g.order {
		tos := make([]string, 0, len(g.out[from]))
		for to := range g.out[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			edges = append(edges, Edge{From: from, To: to, Count: g.out[from][to]})
		}
	}
	return edges
}

// CallWeight returns the weight of the from→to edge (0 if absent).
func (g *Graph) CallWeight(from, to string) int64 {
	return g.out[from][to]
}

// OutDegree returns the number of distinct callees of a function (the
// F-LaaS migration criterion).
func (g *Graph) OutDegree(name string) int {
	return len(g.out[name])
}

// OutWeight returns the total outgoing call count of a function.
func (g *Graph) OutWeight(name string) int64 {
	var w int64
	for _, c := range g.out[name] {
		w += c
	}
	return w
}

// Neighbors returns the union of callees and callers with summed weights,
// i.e. the undirected weighted adjacency used for clustering.
func (g *Graph) Neighbors(name string) map[string]int64 {
	out := make(map[string]int64, len(g.out[name])+len(g.in[name]))
	for to, c := range g.out[name] {
		out[to] += c
	}
	for from, c := range g.in[name] {
		out[from] += c
	}
	return out
}

// TotalCodeBytes sums the static code size over a set of functions
// (nil = all).
func (g *Graph) TotalCodeBytes(names []string) int64 {
	var total int64
	if names == nil {
		names = g.order
	}
	for _, n := range names {
		if node := g.nodes[n]; node != nil {
			total += node.CodeBytes
		}
	}
	return total
}

// TotalMemoryBytes sums the runtime memory footprint over a set of
// functions (nil = all).
func (g *Graph) TotalMemoryBytes(names []string) int64 {
	var total int64
	if names == nil {
		names = g.order
	}
	for _, n := range names {
		if node := g.nodes[n]; node != nil {
			total += node.MemoryBytes
		}
	}
	return total
}

// FunctionsWhere returns the names of nodes matching the predicate, in
// insertion order.
func (g *Graph) FunctionsWhere(pred func(*Node) bool) []string {
	var out []string
	for _, name := range g.order {
		if pred(g.nodes[name]) {
			out = append(out, name)
		}
	}
	return out
}

// AuthFunctions returns the authentication-module functions.
func (g *Graph) AuthFunctions() []string {
	return g.FunctionsWhere(func(n *Node) bool { return n.AuthModule })
}

// KeyFunctions returns the developer-annotated key functions.
func (g *Graph) KeyFunctions() []string {
	return g.FunctionsWhere(func(n *Node) bool { return n.KeyFunction })
}

// IntraFraction computes the fraction of total edge weight that stays
// within groups, given a node→group assignment. The paper's clustering
// observation is that this fraction is high when groups are the true
// modules.
func (g *Graph) IntraFraction(group map[string]string) float64 {
	var intra, total int64
	for from, tos := range g.out {
		for to, c := range tos {
			total += c
			if group[from] != "" && group[from] == group[to] {
				intra += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(intra) / float64(total)
}

// Cycles returns every non-trivial cycle class in the graph: each
// strongly connected component with more than one node, plus every
// self-loop, as node-name slices in deterministic order. An empty result
// means the graph is a DAG — the property the lock-order analyzer gates
// on, since a cycle in a lock-acquisition graph is a potential deadlock.
func (g *Graph) Cycles() [][]string {
	// Tarjan's SCC over the insertion order, with sorted successor
	// iteration for determinism.
	index := make(map[string]int, len(g.nodes))
	lowlink := make(map[string]int, len(g.nodes))
	onStack := make(map[string]bool, len(g.nodes))
	var stack []string
	next := 0
	var cycles [][]string

	succs := func(v string) []string {
		out := make([]string, 0, len(g.out[v]))
		for to := range g.out[v] {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] != index[v] {
			return
		}
		var scc []string
		for {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			onStack[w] = false
			scc = append(scc, w)
			if w == v {
				break
			}
		}
		if len(scc) > 1 {
			// Reverse to pop order → discovery order.
			for i, j := 0, len(scc)-1; i < j; i, j = i+1, j-1 {
				scc[i], scc[j] = scc[j], scc[i]
			}
			cycles = append(cycles, scc)
		} else if g.out[v][v] > 0 {
			cycles = append(cycles, []string{v}) // self-loop
		}
	}

	for _, v := range g.order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return cycles
}

// DOT renders the graph in Graphviz format. migrated marks the functions
// drawn as filled (the enclave side), reproducing Figure 7's visual.
func (g *Graph) DOT(title string, migrated map[string]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n")

	// Group nodes by module as subgraph clusters.
	byModule := make(map[string][]string)
	var moduleOrder []string
	for _, name := range g.order {
		m := g.nodes[name].Module
		if _, seen := byModule[m]; !seen {
			moduleOrder = append(moduleOrder, m)
		}
		byModule[m] = append(byModule[m], name)
	}
	for i, m := range moduleOrder {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", i, m)
		for _, name := range byModule[m] {
			attrs := ""
			if migrated[name] {
				attrs = ", style=filled, fillcolor=lightblue"
			}
			if g.nodes[name].AuthModule {
				attrs += ", shape=box"
			}
			fmt.Fprintf(&b, "    %q [label=%q%s];\n", name, name, attrs)
		}
		b.WriteString("  }\n")
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%d\"];\n", e.From, e.To, e.Count)
	}
	b.WriteString("}\n")
	return b.String()
}
