package callgraph

import (
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Graph {
	t.Helper()
	g := New()
	nodes := []Node{
		{Name: "main", CodeBytes: 100, MemoryBytes: 1 << 12, Module: "init"},
		{Name: "auth", CodeBytes: 200, MemoryBytes: 1 << 12, Module: "am", AuthModule: true},
		{Name: "check", CodeBytes: 150, MemoryBytes: 1 << 12, Module: "am", AuthModule: true, TouchesSensitive: true},
		{Name: "parse", CodeBytes: 400, MemoryBytes: 1 << 14, Module: "core", KeyFunction: true},
		{Name: "exec", CodeBytes: 800, MemoryBytes: 1 << 20, Module: "core", TouchesSensitive: true},
		{Name: "log", CodeBytes: 50, MemoryBytes: 1 << 10, Module: "util"},
	}
	for _, n := range nodes {
		if err := g.AddNode(n); err != nil {
			t.Fatalf("AddNode(%s): %v", n.Name, err)
		}
	}
	calls := []struct {
		from, to string
		count    int64
	}{
		{"main", "auth", 1},
		{"auth", "check", 5},
		{"main", "parse", 100},
		{"parse", "exec", 100},
		{"exec", "log", 300},
		{"parse", "log", 50},
	}
	for _, c := range calls {
		if err := g.AddCall(c.from, c.to, c.count); err != nil {
			t.Fatalf("AddCall(%s→%s): %v", c.from, c.to, err)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := buildSample(t)
	if g.Len() != 6 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Node("parse") == nil || g.Node("ghost") != nil {
		t.Fatal("Node lookup wrong")
	}
	if got := g.CallWeight("parse", "exec"); got != 100 {
		t.Fatalf("CallWeight = %d", got)
	}
	if got := g.OutDegree("parse"); got != 2 {
		t.Fatalf("OutDegree(parse) = %d", got)
	}
	if got := g.OutWeight("parse"); got != 150 {
		t.Fatalf("OutWeight(parse) = %d", got)
	}
	if got := len(g.Edges()); got != 6 {
		t.Fatalf("Edges = %d", got)
	}
}

func TestGraphValidation(t *testing.T) {
	g := New()
	if err := g.AddNode(Node{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := g.AddNode(Node{Name: "a"}); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := g.AddCall("a", "missing", 1); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if err := g.AddCall("missing", "a", 1); err == nil {
		t.Fatal("edge from unknown node accepted")
	}
	if err := g.AddCall("a", "a", 0); err == nil {
		t.Fatal("zero-count edge accepted")
	}
}

func TestAddCallAccumulates(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(Node{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddCall("a", "b", 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCall("a", "b", 4); err != nil {
		t.Fatal(err)
	}
	if got := g.CallWeight("a", "b"); got != 7 {
		t.Fatalf("accumulated weight = %d, want 7", got)
	}
}

func TestNeighborsUndirected(t *testing.T) {
	g := buildSample(t)
	n := g.Neighbors("parse")
	if n["main"] != 100 || n["exec"] != 100 || n["log"] != 50 {
		t.Fatalf("Neighbors(parse) = %v", n)
	}
}

func TestTotals(t *testing.T) {
	g := buildSample(t)
	if got := g.TotalCodeBytes(nil); got != 1700 {
		t.Fatalf("total code = %d", got)
	}
	if got := g.TotalCodeBytes([]string{"auth", "check"}); got != 350 {
		t.Fatalf("AM code = %d", got)
	}
	if got := g.TotalMemoryBytes([]string{"exec"}); got != 1<<20 {
		t.Fatalf("exec memory = %d", got)
	}
	if got := g.TotalCodeBytes([]string{"ghost"}); got != 0 {
		t.Fatalf("ghost code = %d", got)
	}
}

func TestSelectors(t *testing.T) {
	g := buildSample(t)
	am := g.AuthFunctions()
	if len(am) != 2 || am[0] != "auth" || am[1] != "check" {
		t.Fatalf("auth functions = %v", am)
	}
	kf := g.KeyFunctions()
	if len(kf) != 1 || kf[0] != "parse" {
		t.Fatalf("key functions = %v", kf)
	}
	sens := g.FunctionsWhere(func(n *Node) bool { return n.TouchesSensitive })
	if len(sens) != 2 {
		t.Fatalf("sensitive = %v", sens)
	}
}

func TestIntraFraction(t *testing.T) {
	g := buildSample(t)
	byModule := make(map[string]string)
	for _, name := range g.Names() {
		byModule[name] = g.Node(name).Module
	}
	frac := g.IntraFraction(byModule)
	// Intra edges: auth→check (5, am) and parse→exec (100, core) = 105 of 556.
	want := 105.0 / 556.0
	if frac < want-1e-9 || frac > want+1e-9 {
		t.Fatalf("intra fraction = %v, want %v", frac, want)
	}
	if got := New().IntraFraction(nil); got != 0 {
		t.Fatalf("empty graph intra = %v", got)
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildSample(t)
	dot := g.DOT("sample", map[string]bool{"parse": true, "auth": true, "check": true})
	for _, want := range []string{
		"digraph \"sample\"",
		"cluster_0",
		"fillcolor=lightblue",
		"shape=box",
		"\"parse\" -> \"exec\"",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestNamesIsCopy(t *testing.T) {
	g := buildSample(t)
	names := g.Names()
	names[0] = "corrupted"
	if g.Names()[0] == "corrupted" {
		t.Fatal("Names returned aliased slice")
	}
}

func TestReAddNodeKeepsEdges(t *testing.T) {
	g := buildSample(t)
	if err := g.AddNode(Node{Name: "parse", CodeBytes: 999, Module: "core"}); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 {
		t.Fatalf("Len after re-add = %d", g.Len())
	}
	if got := g.Node("parse").CodeBytes; got != 999 {
		t.Fatalf("updated code bytes = %d", got)
	}
	if got := g.CallWeight("parse", "exec"); got != 100 {
		t.Fatal("re-add dropped edges")
	}
}

func cyclesGraph(t *testing.T, nodes []string, edges [][2]string) *Graph {
	t.Helper()
	g := New()
	for _, n := range nodes {
		if err := g.AddNode(Node{Name: n}); err != nil {
			t.Fatalf("AddNode(%s): %v", n, err)
		}
	}
	for _, e := range edges {
		if err := g.AddCall(e[0], e[1], 1); err != nil {
			t.Fatalf("AddCall(%s→%s): %v", e[0], e[1], err)
		}
	}
	return g
}

func TestCyclesDAG(t *testing.T) {
	g := buildSample(t)
	if cycles := g.Cycles(); len(cycles) != 0 {
		t.Errorf("sample graph is a DAG, got cycles %v", cycles)
	}
}

func TestCyclesTwoNode(t *testing.T) {
	g := cyclesGraph(t, []string{"a", "b", "c"}, [][2]string{
		{"a", "b"}, {"b", "a"}, {"b", "c"},
	})
	cycles := g.Cycles()
	if len(cycles) != 1 || len(cycles[0]) != 2 {
		t.Fatalf("want one 2-cycle, got %v", cycles)
	}
	members := map[string]bool{cycles[0][0]: true, cycles[0][1]: true}
	if !members["a"] || !members["b"] {
		t.Errorf("cycle = %v, want {a, b}", cycles[0])
	}
}

func TestCyclesThreeNodeAndSelfLoop(t *testing.T) {
	g := cyclesGraph(t, []string{"a", "b", "c", "d"}, [][2]string{
		{"a", "b"}, {"b", "c"}, {"c", "a"}, {"d", "d"}, {"c", "d"},
	})
	cycles := g.Cycles()
	if len(cycles) != 2 {
		t.Fatalf("want a 3-cycle and a self-loop, got %v", cycles)
	}
	var got3, gotSelf bool
	for _, c := range cycles {
		switch len(c) {
		case 3:
			got3 = true
		case 1:
			gotSelf = c[0] == "d"
		}
	}
	if !got3 || !gotSelf {
		t.Errorf("cycles = %v, want one 3-cycle and the d self-loop", cycles)
	}
}

func TestCyclesSingleNodeNoSelfLoop(t *testing.T) {
	g := cyclesGraph(t, []string{"a", "b"}, [][2]string{{"a", "b"}})
	if cycles := g.Cycles(); len(cycles) != 0 {
		t.Errorf("no self-loop means no cycle, got %v", cycles)
	}
}

func TestCyclesDeterministic(t *testing.T) {
	mk := func() *Graph {
		return cyclesGraph(t, []string{"a", "b", "c", "d"}, [][2]string{
			{"a", "b"}, {"b", "a"}, {"c", "d"}, {"d", "c"},
		})
	}
	first := mk().Cycles()
	for i := 0; i < 10; i++ {
		again := mk().Cycles()
		if len(again) != len(first) {
			t.Fatalf("cycle count changed across runs: %v vs %v", first, again)
		}
		for j := range first {
			if strings.Join(first[j], ",") != strings.Join(again[j], ",") {
				t.Fatalf("cycle order changed across runs: %v vs %v", first, again)
			}
		}
	}
}
