package ratls

import (
	"crypto/tls"
	"io"
	"net"
	"testing"

	"repro/internal/attest"
	"repro/internal/sgx"
)

// benchEndpoint builds an endpoint for benchmarks (no *testing.T).
func benchEndpoint(b *testing.B, name, code string, svc *attest.Service) *endpoint {
	b.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: name, EPCBytes: 1 << 20})
	if err != nil {
		b.Fatalf("NewMachine: %v", err)
	}
	p, err := attest.NewPlatform(name, m)
	if err != nil {
		b.Fatalf("NewPlatform: %v", err)
	}
	e, err := m.CreateEnclave(name, []byte(code), 0)
	if err != nil {
		b.Fatalf("CreateEnclave: %v", err)
	}
	svc.RegisterPlatform(p)
	svc.TrustMeasurement(e.Measurement())
	cfg, err := New(Options{Platform: p, Enclave: e, Verifier: svc})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	return &endpoint{cfg: cfg, platform: p, enclave: e, verifier: svc}
}

// benchServer accepts connections, wraps them with cfg, and echoes until
// EOF. Returned closer stops it.
func benchServer(b *testing.B, cfg *Config) (addr string, stop func()) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				sc, err := cfg.Server(conn)
				if err != nil {
					return
				}
				defer sc.Close()
				_, _ = io.Copy(sc, sc)
			}()
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close() }
}

// roundTrip writes one byte and reads one back, which also drains any
// pending session tickets into the client cache.
func roundTrip(b *testing.B, conn net.Conn, buf []byte) {
	b.Helper()
	if _, err := conn.Write(buf); err != nil {
		b.Fatalf("write: %v", err)
	}
	if _, err := io.ReadFull(conn, buf); err != nil {
		b.Fatalf("read: %v", err)
	}
}

// BenchmarkHandshake measures a full cold handshake: key exchange plus
// quote extraction, binding check, and verification on both sides. The
// client session cache is reset every iteration so no resumption occurs.
func BenchmarkHandshake(b *testing.B) {
	svc := attest.NewService()
	cli := benchEndpoint(b, "bench-cli", "cli-code", svc)
	srv := benchEndpoint(b, "bench-srv", "srv-code", svc)
	addr, stop := benchServer(b, srv.cfg)
	defer stop()

	buf := make([]byte, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.cfg.client.ClientSessionCache = tls.NewLRUClientSessionCache(64)
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatalf("dial: %v", err)
		}
		conn, err := cli.cfg.Client(raw)
		if err != nil {
			b.Fatalf("handshake: %v", err)
		}
		if conn.(*Conn).Resumed() {
			b.Fatal("cold handshake resumed")
		}
		roundTrip(b, conn, buf)
		_ = conn.Close()
	}
}

// BenchmarkResumedHandshake measures a resumed handshake: same wire
// flights minus certificates and quote verification.
func BenchmarkResumedHandshake(b *testing.B) {
	svc := attest.NewService()
	cli := benchEndpoint(b, "bench-cli", "cli-code", svc)
	srv := benchEndpoint(b, "bench-srv", "srv-code", svc)
	addr, stop := benchServer(b, srv.cfg)
	defer stop()

	buf := make([]byte, 1)
	prime := func() net.Conn {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatalf("dial: %v", err)
		}
		conn, err := cli.cfg.Client(raw)
		if err != nil {
			b.Fatalf("handshake: %v", err)
		}
		roundTrip(b, conn, buf)
		return conn
	}
	_ = prime().Close() // seed the session cache

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn := prime()
		if !conn.(*Conn).Resumed() {
			b.Fatal("handshake did not resume")
		}
		_ = conn.Close()
	}
}

// BenchmarkRatlsRoundTrip measures one application round trip over an
// established attested connection: the steady-state cost the channel
// adds to every RPC.
func BenchmarkRatlsRoundTrip(b *testing.B) {
	svc := attest.NewService()
	cli := benchEndpoint(b, "bench-cli", "cli-code", svc)
	srv := benchEndpoint(b, "bench-srv", "srv-code", svc)
	addr, stop := benchServer(b, srv.cfg)
	defer stop()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	conn, err := cli.cfg.Client(raw)
	if err != nil {
		b.Fatalf("handshake: %v", err)
	}
	defer conn.Close()

	buf := make([]byte, 256)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip(b, conn, buf)
	}
}
