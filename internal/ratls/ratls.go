// Package ratls implements the paper's attested encrypted channel
// (Sections 4.2, 5.6) as RA-TLS over crypto/tls: each endpoint generates
// an ephemeral key pair and a self-signed certificate whose public-key
// hash is the report data of an attest.Quote embedded in a certificate
// extension. The peer extracts the quote during the TLS handshake,
// verifies it through an attest.Service (platform signature, measurement
// against the trust list, revocation honored), and binds it to the
// presented key — so channel encryption and enclave identity are
// established by one handshake, and nothing readable crosses the wire
// outside the TLS record layer.
//
// Because remote attestation costs seconds (the paper measures 3-4s per
// quote verification), the channel supports TLS 1.3 session resumption:
// the server encrypts session tickets under a rotating secret that, in a
// real deployment, never leaves the enclave. A resumed handshake skips
// quote verification entirely — the ticket proves a prior attested
// session — and rotating the ticket secret invalidates all outstanding
// tickets, forcing the next connection through a full, re-verified
// handshake (which is how revocation catches up with resumed peers).
package ratls

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sgx"
)

// oidQuoteExtension is the X.509 extension carrying the JSON-encoded
// attest.Quote, under Intel's RA-TLS arc.
var oidQuoteExtension = asn1.ObjectIdentifier{1, 2, 840, 113741, 1337, 6}

// DefaultHandshakeTimeout bounds one TLS handshake unless the Options
// override it. Without it a peer that stalls mid-flight wedges the
// connection goroutine forever.
const DefaultHandshakeTimeout = 10 * time.Second

// Errors surfaced by the handshake. Quote-level failures from
// attest.Service (ErrBadQuote, ErrUntrustedMeasurement, ...) are wrapped
// and remain matchable with errors.Is.
var (
	// ErrHandshake wraps every handshake failure, so transports can
	// classify "the TLS/attestation layer failed" for retry decisions.
	ErrHandshake = errors.New("ratls: handshake failed")
	// ErrNoQuote reports a peer certificate without the quote extension.
	ErrNoQuote = errors.New("ratls: peer certificate carries no quote")
	// ErrQuoteBinding reports a quote whose report data does not match
	// the hash of the certificate's public key: a valid quote replayed
	// over a key the enclave never attested.
	ErrQuoteBinding = errors.New("ratls: quote not bound to presented key")
	// ErrUnsealedChannel reports an attempt to send secret material over
	// a connection that is neither attested nor explicitly insecure.
	ErrUnsealedChannel = errors.New("ratls: refusing to write secret to unattested channel")
)

// Options configures one endpoint of the attested channel.
type Options struct {
	// Platform mints this endpoint's quote. Required.
	Platform *attest.Platform
	// Enclave is the identity this endpoint presents: its measurement is
	// what the peer's trust list must contain. Required.
	Enclave *sgx.Enclave
	// Verifier checks the peer's quote. Required. Mutual attestation is
	// not optional: both ends always verify.
	Verifier *attest.Service
	// ChargeTo, when non-nil, is the machine whose virtual clock pays the
	// remote-attestation latency for each quote this endpoint verifies
	// (cold handshakes only; resumption is how that cost is amortized).
	ChargeTo *sgx.Machine
	// ServerName keys the client-side session cache. Defaults to
	// "securelease"; it is not checked against the certificate (identity
	// comes from the quote, not from X.509 names).
	ServerName string
	// HandshakeTimeout bounds one handshake; 0 means
	// DefaultHandshakeTimeout, negative disables the deadline.
	HandshakeTimeout time.Duration
}

// Config holds one endpoint's channel state: its certificate-plus-quote
// credential, the TLS configurations derived from it, the server-side
// ticket secret, and the handshake counters. One Config serves any number
// of connections concurrently; daemons create one at startup.
type Config struct {
	insecure bool

	client *tls.Config
	server *tls.Config

	handshakeTimeout time.Duration

	tracer atomic.Pointer[obs.Tracer]
	flight atomic.Pointer[flight.Recorder]

	coldHandshakes    atomic.Int64
	resumedHandshakes atomic.Int64
	handshakeFailures atomic.Int64
	quoteVerifs       atomic.Int64
	quoteRejects      atomic.Int64
	ticketRotations   atomic.Int64
}

// Stats is a snapshot of a Config's handshake counters. Tests assert the
// resumption-skips-verification property through it; ExposeMetrics
// publishes the same numbers.
type Stats struct {
	ColdHandshakes     int64
	ResumedHandshakes  int64
	HandshakeFailures  int64
	QuoteVerifications int64
	QuoteRejections    int64
	TicketRotations    int64
}

// Stats returns the current counter snapshot.
func (c *Config) Stats() Stats {
	return Stats{
		ColdHandshakes:     c.coldHandshakes.Load(),
		ResumedHandshakes:  c.resumedHandshakes.Load(),
		HandshakeFailures:  c.handshakeFailures.Load(),
		QuoteVerifications: c.quoteVerifs.Load(),
		QuoteRejections:    c.quoteRejects.Load(),
		TicketRotations:    c.ticketRotations.Load(),
	}
}

// New builds an attested-channel Config: it generates the ephemeral key
// pair, mints the quote over the public key's hash, and wires the
// verification callbacks. The credential is created once; verification
// of it happens on every cold handshake, so trust-list changes
// (revocation) take effect on the next full handshake.
func New(opts Options) (*Config, error) {
	if opts.Platform == nil || opts.Enclave == nil || opts.Verifier == nil {
		return nil, errors.New("ratls: Platform, Enclave, and Verifier are all required")
	}
	cert, err := mintCredential(opts.Platform, opts.Enclave)
	if err != nil {
		return nil, err
	}
	c := &Config{handshakeTimeout: opts.HandshakeTimeout}
	if c.handshakeTimeout == 0 {
		c.handshakeTimeout = DefaultHandshakeTimeout
	}
	serverName := opts.ServerName
	if serverName == "" {
		serverName = "securelease"
	}

	verifyPeer := func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
		c.quoteVerifs.Add(1)
		if err := verifyQuotedCert(rawCerts, opts.Verifier, opts.ChargeTo); err != nil {
			c.quoteRejects.Add(1)
			return err
		}
		return nil
	}
	// VerifyPeerCertificate does not run on resumed connections — that is
	// the point of resumption — but the session ticket must still carry an
	// attested identity. VerifyConnection runs on every connection and
	// enforces it.
	verifyConn := func(cs tls.ConnectionState) error {
		if len(cs.PeerCertificates) == 0 {
			return fmt.Errorf("%w: no peer certificate in session", ErrNoQuote)
		}
		return nil
	}

	base := &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{cert},
		// Verification is the quote check, not WebPKI: names and chains
		// prove nothing about enclaves, so the stock verifier is off and
		// VerifyPeerCertificate is the real gate.
		InsecureSkipVerify:    true,
		VerifyPeerCertificate: verifyPeer,
		VerifyConnection:      verifyConn,
	}

	c.client = base.Clone()
	c.client.ServerName = serverName
	c.client.ClientSessionCache = tls.NewLRUClientSessionCache(64)

	c.server = base.Clone()
	c.server.ClientAuth = tls.RequireAnyClientCert
	if err := c.RotateTicketSecret(); err != nil {
		return nil, err
	}
	c.ticketRotations.Store(0) // the initial key is not a rotation
	return c, nil
}

// NewProvisioned builds a Config for a daemon in a provisioned fleet:
// every endpoint holds the same provisioning secret, from which each
// side derives the other's quote-verification key — no shared platform
// registry required, which is what lets two separate processes attest
// each other. The endpoint presents codeIdentity (run in a fresh channel
// enclave on m) and accepts peers running any of the trusted code
// identities.
func NewProvisioned(name string, m *sgx.Machine, secret, codeIdentity []byte, trustedCode ...[]byte) (*Config, error) {
	if m == nil {
		return nil, errors.New("ratls: nil machine")
	}
	plat, err := attest.NewProvisionedPlatform(name, m, secret)
	if err != nil {
		return nil, err
	}
	enc, err := m.CreateEnclave("ratls-channel", codeIdentity, 0)
	if err != nil {
		return nil, fmt.Errorf("ratls: channel enclave: %w", err)
	}
	verifier := attest.NewService()
	verifier.EnableProvisioning(secret)
	for _, code := range trustedCode {
		verifier.TrustMeasurement(sgx.MeasurementOf(code))
	}
	return New(Options{Platform: plat, Enclave: enc, Verifier: verifier, ChargeTo: m})
}

// Insecure returns a Config that performs no TLS and no attestation:
// connections pass through as plaintext. It exists as an explicit escape
// hatch for netsim and benchmark paths; daemons only use it behind an
// -insecure flag.
func Insecure() *Config {
	return &Config{insecure: true}
}

// IsInsecure reports whether this Config is the plaintext escape hatch.
func (c *Config) IsInsecure() bool { return c.insecure }

// RotateTicketSecret replaces the server-side session-ticket secret with
// a fresh random one (in a real deployment: generated and held inside
// the enclave). All outstanding tickets stop decrypting, so every
// resumed peer falls back to a full, quote-verified handshake — the
// revocation catch-up path.
func (c *Config) RotateTicketSecret() error {
	if c.insecure {
		return nil
	}
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		return fmt.Errorf("ratls: ticket secret: %w", err)
	}
	c.server.SetSessionTicketKeys([][32]byte{key})
	c.ticketRotations.Add(1)
	return nil
}

// Client wraps conn as the initiating side of the channel and runs the
// handshake. On failure the connection is closed and the error wraps
// ErrHandshake (plus the underlying attest error, when the rejection is
// ours).
func (c *Config) Client(conn net.Conn) (net.Conn, error) {
	if c.insecure {
		return &InsecureConn{Conn: conn}, nil
	}
	return c.handshake(tls.Client(conn, c.client), "client")
}

// Server wraps conn as the accepting side of the channel and runs the
// handshake.
func (c *Config) Server(conn net.Conn) (net.Conn, error) {
	if c.insecure {
		return &InsecureConn{Conn: conn}, nil
	}
	return c.handshake(tls.Server(conn, c.server), "server")
}

func (c *Config) handshake(tconn *tls.Conn, mode string) (net.Conn, error) {
	span := c.tracer.Load().Start("ratls.handshake")
	span.Annotate("mode", mode)
	if c.handshakeTimeout > 0 {
		_ = tconn.SetDeadline(time.Now().Add(c.handshakeTimeout))
	}
	if err := tconn.Handshake(); err != nil {
		c.handshakeFailures.Add(1)
		c.flight.Load().Emit("ratls.handshake_failure",
			flight.KV{K: "mode", V: mode},
			flight.KV{K: "err", V: err.Error()})
		_ = tconn.Close()
		err = fmt.Errorf("%w: %w", ErrHandshake, err)
		span.End(err)
		return nil, err
	}
	if c.handshakeTimeout > 0 {
		_ = tconn.SetDeadline(time.Time{})
	}
	resumed := tconn.ConnectionState().DidResume
	if resumed {
		c.resumedHandshakes.Add(1)
	} else {
		c.coldHandshakes.Add(1)
	}
	span.Annotate("resumed", fmt.Sprintf("%t", resumed))
	span.End(nil)
	return &Conn{Conn: tconn}, nil
}

// Conn is an attested connection: TLS with the peer's enclave identity
// verified (directly on a cold handshake, transitively via the session
// ticket on a resumed one). SealForChannel releases secret material only
// into this type or the explicit InsecureConn.
type Conn struct {
	*tls.Conn
}

// Resumed reports whether this connection skipped quote verification by
// resuming a prior attested session.
func (c *Conn) Resumed() bool { return c.ConnectionState().DidResume }

// PeerMeasurement returns the peer enclave's measurement from the quote
// bound into its certificate.
func (c *Conn) PeerMeasurement() (sgx.Measurement, error) {
	certs := c.ConnectionState().PeerCertificates
	if len(certs) == 0 {
		return sgx.Measurement{}, ErrNoQuote
	}
	q, err := quoteFromCert(certs[0])
	if err != nil {
		return sgx.Measurement{}, err
	}
	return q.Report.Source, nil
}

// InsecureConn marks a connection the operator explicitly opted out of
// attestation for (netsim, benchmarks, -insecure daemons). It exists as
// a distinct type so the sanitizer gate in SealForChannel — and the
// secretflow analyzer behind it — can tell "deliberately insecure" from
// "forgot to wrap".
type InsecureConn struct {
	net.Conn
}

// mintCredential generates the ephemeral key pair and self-signed
// certificate, with the quote over the public key's hash embedded as an
// extension.
func mintCredential(p *attest.Platform, e *sgx.Enclave) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("ratls: generating key: %w", err)
	}
	spki, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("ratls: encoding public key: %w", err)
	}
	hash := sha256.Sum256(spki)
	quote, err := p.CreateQuote(e, hash[:])
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("ratls: minting quote: %w", err)
	}
	return certWithQuote(key, quote)
}

// certWithQuote self-signs a certificate for key carrying quote in the
// RA-TLS extension. Split from mintCredential so tests can bind the
// wrong quote to a key and watch it be rejected.
func certWithQuote(key *ecdsa.PrivateKey, quote attest.Quote) (tls.Certificate, error) {
	quoteJSON, err := json.Marshal(quote)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("ratls: encoding quote: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("ratls: serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: "securelease-ratls"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		ExtraExtensions: []pkix.Extension{{
			Id:    oidQuoteExtension,
			Value: quoteJSON,
		}},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("ratls: self-signing: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// verifyQuotedCert is the cold-handshake gate: parse the leaf, extract
// the quote, check the key binding, and verify the quote at the service.
func verifyQuotedCert(rawCerts [][]byte, svc *attest.Service, chargeTo *sgx.Machine) error {
	if len(rawCerts) == 0 {
		return ErrNoQuote
	}
	leaf, err := x509.ParseCertificate(rawCerts[0])
	if err != nil {
		return fmt.Errorf("ratls: parsing peer certificate: %w", err)
	}
	quote, err := quoteFromCert(leaf)
	if err != nil {
		return err
	}
	hash := sha256.Sum256(leaf.RawSubjectPublicKeyInfo)
	var bound [attest.ReportDataSize]byte
	copy(bound[:], hash[:])
	if quote.Report.Data != bound {
		return ErrQuoteBinding
	}
	if err := svc.VerifyQuote(quote, chargeTo); err != nil {
		return fmt.Errorf("ratls: peer quote: %w", err)
	}
	return nil
}

// quoteFromCert extracts and decodes the quote extension.
func quoteFromCert(cert *x509.Certificate) (attest.Quote, error) {
	for _, ext := range cert.Extensions {
		if ext.Id.Equal(oidQuoteExtension) {
			var q attest.Quote
			if err := json.Unmarshal(ext.Value, &q); err != nil {
				return attest.Quote{}, fmt.Errorf("ratls: decoding quote extension: %w", err)
			}
			return q, nil
		}
	}
	return attest.Quote{}, ErrNoQuote
}
