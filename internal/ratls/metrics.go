package ratls

import (
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// ExposeMetrics registers the channel's handshake counters with an obs
// registry and, when tr is non-nil, records one trace span per handshake
// (annotated with mode and whether it resumed).
//
// Metric inventory: ratls_handshakes_total, ratls_resumed_handshakes_total,
// ratls_handshake_failures_total, ratls_quote_verifications_total,
// ratls_quote_rejections_total, ratls_ticket_rotations_total. The gap
// between handshakes and quote verifications is the attestation cost
// resumption saved.
func (c *Config) ExposeMetrics(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil {
		return
	}
	reg.CounterFunc("ratls_handshakes_total", "Completed full (quote-verified) handshakes.", nil,
		func() float64 { return float64(c.coldHandshakes.Load()) })
	reg.CounterFunc("ratls_resumed_handshakes_total", "Completed resumed handshakes (quote verification skipped).", nil,
		func() float64 { return float64(c.resumedHandshakes.Load()) })
	reg.CounterFunc("ratls_handshake_failures_total", "Handshakes that failed (TLS or attestation).", nil,
		func() float64 { return float64(c.handshakeFailures.Load()) })
	reg.CounterFunc("ratls_quote_verifications_total", "Peer quotes checked during cold handshakes.", nil,
		func() float64 { return float64(c.quoteVerifs.Load()) })
	reg.CounterFunc("ratls_quote_rejections_total", "Peer quotes rejected (binding, signature, or trust list).", nil,
		func() float64 { return float64(c.quoteRejects.Load()) })
	reg.CounterFunc("ratls_ticket_rotations_total", "Session-ticket secret rotations (each invalidates all outstanding tickets).", nil,
		func() float64 { return float64(c.ticketRotations.Load()) })
	if tr != nil {
		c.tracer.Store(tr)
	}
}

// SetFlightRecorder wires the black-box flight recorder; the channel emits
// handshake failures into it. A nil recorder (the default) is free.
func (c *Config) SetFlightRecorder(rec *flight.Recorder) {
	c.flight.Store(rec)
}
