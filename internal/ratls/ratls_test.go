package ratls

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"io"
	"math/big"
	"net"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
)

// endpoint bundles one side's identity with its Config for tests.
type endpoint struct {
	cfg      *Config
	platform *attest.Platform
	enclave  *sgx.Enclave
	verifier *attest.Service
}

// newEndpoint builds an endpoint whose verifier is the shared service
// svc; the endpoint's own platform and measurement are registered with
// it, so two endpoints sharing one service mutually trust each other.
func newEndpoint(t *testing.T, name, code string, svc *attest.Service) *endpoint {
	t.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: name, EPCBytes: 1 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	p, err := attest.NewPlatform(name, m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	e, err := m.CreateEnclave(name, []byte(code), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	svc.RegisterPlatform(p)
	svc.TrustMeasurement(e.Measurement())
	cfg, err := New(Options{Platform: p, Enclave: e, Verifier: svc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &endpoint{cfg: cfg, platform: p, enclave: e, verifier: svc}
}

// pair returns a mutually-trusting client/server endpoint pair.
func pair(t *testing.T) (cli, srv *endpoint) {
	t.Helper()
	svc := attest.NewService()
	return newEndpoint(t, "sl-local-host", "sl-local-code", svc),
		newEndpoint(t, "sl-remote-host", "sl-remote-code", svc)
}

// tcpPair returns the two ends of one loopback TCP connection. The
// kernel's socket buffers absorb the server's post-handshake ticket
// writes, which an unbuffered net.Pipe would deadlock on.
func tcpPair(t *testing.T) (cliSide, srvSide net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cliSide, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	return cliSide, r.c
}

// handshakePipe runs both sides of a handshake over one TCP connection.
func handshakePipe(t *testing.T, cli, srv *Config) (cliConn, srvConn net.Conn, cliErr, srvErr error) {
	t.Helper()
	pc, ps := tcpPair(t)
	done := make(chan struct{})
	go func() {
		srvConn, srvErr = srv.Server(ps)
		close(done)
	}()
	cliConn, cliErr = cli.Client(pc)
	<-done
	return
}

// xchg pushes one byte each way, which also delivers the server's
// post-handshake session tickets to the client.
func xchg(t *testing.T, cli, srv net.Conn) {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		if _, err := srv.Write([]byte{1}); err != nil {
			errc <- err
			return
		}
		buf := make([]byte, 1)
		_, err := io.ReadFull(srv, buf)
		errc <- err
	}()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(cli, buf); err != nil {
		t.Fatalf("client read: %v", err)
	}
	if _, err := cli.Write([]byte{2}); err != nil {
		t.Fatalf("client write: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("server side: %v", err)
	}
}

func closeBoth(a, b net.Conn) {
	if a != nil {
		_ = a.Close()
	}
	if b != nil {
		_ = b.Close()
	}
}

func TestMutualAttestedHandshake(t *testing.T) {
	cli, srv := pair(t)
	cc, sc, cliErr, srvErr := handshakePipe(t, cli.cfg, srv.cfg)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("handshake: client %v, server %v", cliErr, srvErr)
	}
	defer closeBoth(cc, sc)
	xchg(t, cc, sc)

	for side, ep := range map[string]*endpoint{"client": cli, "server": srv} {
		st := ep.cfg.Stats()
		if st.ColdHandshakes != 1 || st.ResumedHandshakes != 0 || st.QuoteVerifications != 1 {
			t.Fatalf("%s stats = %+v, want 1 cold / 0 resumed / 1 verified", side, st)
		}
	}
	m, err := cc.(*Conn).PeerMeasurement()
	if err != nil {
		t.Fatalf("PeerMeasurement: %v", err)
	}
	if m != srv.enclave.Measurement() {
		t.Fatal("client sees wrong server measurement")
	}
	m, err = sc.(*Conn).PeerMeasurement()
	if err != nil {
		t.Fatalf("PeerMeasurement: %v", err)
	}
	if m != cli.enclave.Measurement() {
		t.Fatal("server sees wrong client measurement")
	}
}

func TestResumptionSkipsQuoteVerification(t *testing.T) {
	cli, srv := pair(t)
	cc, sc, cliErr, srvErr := handshakePipe(t, cli.cfg, srv.cfg)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("cold handshake: client %v, server %v", cliErr, srvErr)
	}
	xchg(t, cc, sc) // delivers session tickets
	closeBoth(cc, sc)

	cc, sc, cliErr, srvErr = handshakePipe(t, cli.cfg, srv.cfg)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("resumed handshake: client %v, server %v", cliErr, srvErr)
	}
	defer closeBoth(cc, sc)
	if !cc.(*Conn).Resumed() {
		t.Fatal("second connection did not resume")
	}
	xchg(t, cc, sc)

	for side, ep := range map[string]*endpoint{"client": cli, "server": srv} {
		st := ep.cfg.Stats()
		if st.ResumedHandshakes != 1 {
			t.Fatalf("%s resumed = %d, want 1", side, st.ResumedHandshakes)
		}
		if st.QuoteVerifications != 1 {
			t.Fatalf("%s quote verifications = %d after resumption, want still 1", side, st.QuoteVerifications)
		}
	}

	// Identity is still available on the resumed connection via the
	// certificates carried in the session ticket.
	m, err := sc.(*Conn).PeerMeasurement()
	if err != nil {
		t.Fatalf("PeerMeasurement on resumed conn: %v", err)
	}
	if m != cli.enclave.Measurement() {
		t.Fatal("resumed session lost client identity")
	}
}

func TestWrongMeasurementRejected(t *testing.T) {
	// Distinct services: the client's verifier knows the server's
	// platform but does not trust its measurement.
	cliSvc, srvSvc := attest.NewService(), attest.NewService()
	cli := newEndpoint(t, "cli-host", "cli-code", cliSvc)
	srv := newEndpoint(t, "srv-host", "srv-code", srvSvc)
	cliSvc.RegisterPlatform(srv.platform)
	srvSvc.RegisterPlatform(cli.platform)
	srvSvc.TrustMeasurement(cli.enclave.Measurement())
	// cliSvc deliberately does NOT trust srv's measurement.

	cc, sc, cliErr, _ := handshakePipe(t, cli.cfg, srv.cfg)
	defer closeBoth(cc, sc)
	if !errors.Is(cliErr, ErrHandshake) {
		t.Fatalf("client error = %v, want ErrHandshake", cliErr)
	}
	if !errors.Is(cliErr, attest.ErrUntrustedMeasurement) {
		t.Fatalf("client error = %v, want ErrUntrustedMeasurement in chain", cliErr)
	}
	st := cli.cfg.Stats()
	if st.QuoteRejections != 1 || st.HandshakeFailures != 1 || st.ColdHandshakes != 0 {
		t.Fatalf("client stats = %+v, want 1 rejection / 1 failure / 0 cold", st)
	}
}

func TestQuoteOverMismatchedKeyRejected(t *testing.T) {
	cli, srv := pair(t)
	// Re-sign the server's credential with a fresh key while keeping a
	// quote minted over different report data: a genuine quote replayed
	// over a key the enclave never attested.
	evilKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	quote, err := srv.platform.CreateQuote(srv.enclave, []byte("not-the-pubkey-hash"))
	if err != nil {
		t.Fatalf("CreateQuote: %v", err)
	}
	cert, err := certWithQuote(evilKey, quote)
	if err != nil {
		t.Fatalf("certWithQuote: %v", err)
	}
	srv.cfg.server.Certificates = []tls.Certificate{cert}

	cc, sc, cliErr, _ := handshakePipe(t, cli.cfg, srv.cfg)
	defer closeBoth(cc, sc)
	if !errors.Is(cliErr, ErrQuoteBinding) {
		t.Fatalf("client error = %v, want ErrQuoteBinding", cliErr)
	}
}

func TestMissingQuoteRejected(t *testing.T) {
	cli, srv := pair(t)
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	plain, err := plainCert(key)
	if err != nil {
		t.Fatalf("plainCert: %v", err)
	}
	srv.cfg.server.Certificates = []tls.Certificate{plain}

	cc, sc, cliErr, _ := handshakePipe(t, cli.cfg, srv.cfg)
	defer closeBoth(cc, sc)
	if !errors.Is(cliErr, ErrNoQuote) {
		t.Fatalf("client error = %v, want ErrNoQuote", cliErr)
	}
}

// plainCert self-signs a certificate without the quote extension.
func plainCert(key *ecdsa.PrivateKey) (tls.Certificate, error) {
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: "no-quote"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

func TestRevokedMeasurementMidRun(t *testing.T) {
	svc := attest.NewService()
	cli := newEndpoint(t, "cli-host", "cli-code", svc)
	srv := newEndpoint(t, "srv-host", "srv-code", svc)

	cc, sc, cliErr, srvErr := handshakePipe(t, cli.cfg, srv.cfg)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("cold handshake: client %v, server %v", cliErr, srvErr)
	}
	xchg(t, cc, sc)
	closeBoth(cc, sc)

	// Revocation lands mid-run. A resumed session still rides the old
	// ticket — resumption's documented blind spot...
	svc.RevokeMeasurement(srv.enclave.Measurement())
	cc, sc, cliErr, srvErr = handshakePipe(t, cli.cfg, srv.cfg)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("resumed handshake after revocation: client %v, server %v", cliErr, srvErr)
	}
	if !cc.(*Conn).Resumed() {
		t.Fatal("expected resumption")
	}
	xchg(t, cc, sc)
	closeBoth(cc, sc)

	// ...until the ticket secret rotates: every outstanding ticket stops
	// decrypting, the next handshake is cold, and the revoked peer is
	// rejected.
	if err := srv.cfg.RotateTicketSecret(); err != nil {
		t.Fatalf("RotateTicketSecret: %v", err)
	}
	before := cli.cfg.Stats()
	cc, sc, cliErr, _ = handshakePipe(t, cli.cfg, srv.cfg)
	defer closeBoth(cc, sc)
	if !errors.Is(cliErr, attest.ErrUntrustedMeasurement) {
		t.Fatalf("post-rotation handshake: got %v, want ErrUntrustedMeasurement", cliErr)
	}
	after := cli.cfg.Stats()
	if after.QuoteRejections != before.QuoteRejections+1 {
		t.Fatalf("quote rejections %d → %d, want +1", before.QuoteRejections, after.QuoteRejections)
	}
	if srv.cfg.Stats().TicketRotations != 1 {
		t.Fatalf("ticket rotations = %d, want 1", srv.cfg.Stats().TicketRotations)
	}
}

func TestRotationForcesColdHandshake(t *testing.T) {
	cli, srv := pair(t)
	cc, sc, cliErr, srvErr := handshakePipe(t, cli.cfg, srv.cfg)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("cold handshake: client %v, server %v", cliErr, srvErr)
	}
	xchg(t, cc, sc)
	closeBoth(cc, sc)

	if err := srv.cfg.RotateTicketSecret(); err != nil {
		t.Fatalf("RotateTicketSecret: %v", err)
	}
	cc, sc, cliErr, srvErr = handshakePipe(t, cli.cfg, srv.cfg)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("post-rotation handshake: client %v, server %v", cliErr, srvErr)
	}
	defer closeBoth(cc, sc)
	if cc.(*Conn).Resumed() {
		t.Fatal("stale ticket resumed after rotation")
	}
	if st := srv.cfg.Stats(); st.ColdHandshakes != 2 || st.QuoteVerifications != 2 {
		t.Fatalf("server stats = %+v, want 2 cold / 2 verified", st)
	}
}

func TestHandshakeFailureOnCutConn(t *testing.T) {
	cli, _ := pair(t)
	pc, ps := net.Pipe()
	_ = ps.Close() // peer vanishes before the handshake
	_, err := cli.cfg.Client(pc)
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("got %v, want ErrHandshake", err)
	}
	if st := cli.cfg.Stats(); st.HandshakeFailures != 1 {
		t.Fatalf("handshake failures = %d, want 1", st.HandshakeFailures)
	}
}

func TestInsecurePassthrough(t *testing.T) {
	cfg := Insecure()
	if !cfg.IsInsecure() {
		t.Fatal("IsInsecure = false")
	}
	pc, ps := net.Pipe()
	cc, err := cfg.Client(pc)
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	sc, err := cfg.Server(ps)
	if err != nil {
		t.Fatalf("Server: %v", err)
	}
	defer closeBoth(cc, sc)
	if _, ok := cc.(*InsecureConn); !ok {
		t.Fatalf("client conn is %T, want *InsecureConn", cc)
	}
	xchg(t, cc, sc)
	if st := cfg.Stats(); st != (Stats{}) {
		t.Fatalf("insecure config counted handshakes: %+v", st)
	}
}

func TestSealForChannel(t *testing.T) {
	key, err := seccrypto.NewKey(rand.Reader)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}

	cli, srv := pair(t)
	cc, sc, cliErr, srvErr := handshakePipe(t, cli.cfg, srv.cfg)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("handshake: client %v, server %v", cliErr, srvErr)
	}
	defer closeBoth(cc, sc)

	b, err := SealForChannel(key, cc)
	if err != nil {
		t.Fatalf("attested conn refused: %v", err)
	}
	if len(b) != seccrypto.KeySize {
		t.Fatalf("sealed %d bytes, want %d", b, seccrypto.KeySize)
	}

	if _, err := SealForChannel(key, &InsecureConn{}); err != nil {
		t.Fatalf("explicit insecure conn refused: %v", err)
	}

	pc, ps := net.Pipe()
	defer closeBoth(pc, ps)
	if _, err := SealForChannel(key, pc); !errors.Is(err, ErrUnsealedChannel) {
		t.Fatalf("plain net.Conn: got %v, want ErrUnsealedChannel", err)
	}
}

func TestNewRequiresIdentity(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted empty options")
	}
}

// provisionedConfig builds one provisioned-fleet endpoint for the tests
// below: its own machine, credentials derived from the shared secret.
func provisionedConfig(t *testing.T, name string, secret, code []byte, trusted ...[]byte) *Config {
	t.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: name, EPCBytes: 1 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	cfg, err := NewProvisioned(name, m, secret, code, trusted...)
	if err != nil {
		t.Fatalf("NewProvisioned(%s): %v", name, err)
	}
	return cfg
}

// TestProvisionedFleetHandshake exercises the cross-process deployment
// path: two endpoints that share no attest.Service or platform registry,
// only a provisioning secret, mutually attest — and an endpoint holding
// a different secret is rejected at quote verification.
func TestProvisionedFleetHandshake(t *testing.T) {
	secret := []byte("fleet-secret")
	codeA, codeB := []byte("daemon-a"), []byte("daemon-b")
	cli := provisionedConfig(t, "node-a", secret, codeA, codeB)
	srv := provisionedConfig(t, "node-b", secret, codeB, codeA)

	cc, sc, cliErr, srvErr := handshakePipe(t, cli, srv)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("provisioned handshake: cli=%v srv=%v", cliErr, srvErr)
	}
	closeBoth(cc, sc)

	evil := provisionedConfig(t, "node-x", []byte("other-secret"), codeA, codeB)
	_, _, cliErr, srvErr = handshakePipe(t, evil, srv)
	if cliErr == nil && srvErr == nil {
		t.Fatal("endpoint with a different provisioning secret completed the handshake")
	}
	if cliErr != nil && !errors.Is(cliErr, ErrHandshake) {
		t.Fatalf("impostor client error = %v, want ErrHandshake", cliErr)
	}
}

// TestProvisionedUntrustedCodeRejected pins the trust list: sharing the
// secret is necessary but not sufficient — the peer must also run a
// trusted code identity.
func TestProvisionedUntrustedCodeRejected(t *testing.T) {
	secret := []byte("fleet-secret")
	cli := provisionedConfig(t, "node-a", secret, []byte("daemon-a"), []byte("daemon-b"))
	srv := provisionedConfig(t, "node-b", secret, []byte("daemon-rogue"), []byte("daemon-a"))
	_, _, cliErr, _ := handshakePipe(t, cli, srv)
	if !errors.Is(cliErr, ErrHandshake) || !errors.Is(cliErr, attest.ErrUntrustedMeasurement) {
		t.Fatalf("rogue-code handshake error = %v, want ErrHandshake+ErrUntrustedMeasurement", cliErr)
	}
}
