package ratls

import (
	"net"

	"repro/internal/seccrypto"
)

// SealForChannel releases a key's raw bytes for transmission over conn —
// but only when conn is an attested ratls.Conn (the TLS record layer
// encrypts everything written) or an explicit InsecureConn (the operator
// opted out with -insecure). Any other connection type, in particular a
// plain net.Conn, is refused.
//
// This is the single audited choke point between in-enclave key material
// and the network: the secretflow analyzer treats its result as
// sanitized, which is sound exactly because this function checks the
// channel type at runtime before exposing the bytes.
func SealForChannel(key seccrypto.Key, conn net.Conn) ([]byte, error) {
	switch conn.(type) {
	case *Conn, *InsecureConn:
		return key.Bytes(), nil
	default:
		return nil, ErrUnsealedChannel
	}
}
