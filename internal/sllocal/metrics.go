package sllocal

import (
	"repro/internal/leasetree"
	"repro/internal/obs"
)

// svcMetrics holds SL-Local's active metrics. All fields are nil until
// ExposeMetrics runs; the record sites use obs's nil-safe methods, so an
// un-instrumented service pays nothing. tracer may be nil (spans no-op).
type svcMetrics struct {
	requestLatency *obs.Histogram
	renewLatency   *obs.Histogram
	tracer         *obs.Tracer
}

// ExposeMetrics registers SL-Local's counters and latency histograms with
// an obs registry, labeled by machine name. Counter-style stats are
// exported as scrape-time callbacks over the existing Stats fields; the
// two latency histograms record actively on the request and renewal paths.
//
// Metric inventory (all labeled {machine=<name>}):
//
//	sllocal_requests_total, sllocal_tokens_issued_total
//	sllocal_local_attests_total
//	sllocal_renewals_total, sllocal_renewal_failures_total
//	sllocal_denials_total
//	sllocal_token_batch_hit_rate          tokens issued per local attestation
//	sllocal_tree_footprint_bytes
//	sllocal_tree_commits_total, sllocal_tree_restores_total, sllocal_tree_evictions_total
//	sllocal_request_latency_seconds       RequestToken wall time (histogram)
//	sllocal_renew_latency_seconds         SL-Remote renewal wall time (histogram)
//
// When tr is non-nil the service records one span per SL-Remote operation
// (sllocal.init, sllocal.renew, sllocal.escrow); with a wire.Client remote
// the RPC span nests under it and carries the TraceID to the server.
func (s *Service) ExposeMetrics(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil {
		return
	}
	lbl := map[string]string{"machine": s.deps.Machine.Name()}
	stat := func(name, help string, fn func(Stats) int64) {
		reg.CounterFunc(name, help, lbl, func() float64 { return float64(fn(s.Stats())) })
	}
	stat("sllocal_requests_total", "License-check requests served.",
		func(st Stats) int64 { return st.Requests })
	stat("sllocal_tokens_issued_total", "Execution grants issued.",
		func(st Stats) int64 { return st.TokensIssued })
	stat("sllocal_local_attests_total", "Local attestations with requesting enclaves.",
		func(st Stats) int64 { return st.LocalAttests })
	stat("sllocal_renewals_total", "Successful renewals against SL-Remote.",
		func(st Stats) int64 { return st.Renewals })
	stat("sllocal_renewal_failures_total", "Failed renewals (network or policy).",
		func(st Stats) int64 { return st.RenewalFailures })
	stat("sllocal_denials_total", "Requests denied (no valid lease).",
		func(st Stats) int64 { return st.Denials })
	reg.GaugeFunc("sllocal_token_batch_hit_rate",
		"Tokens issued per local attestation (the Section 7.3 batching win).", lbl,
		func() float64 {
			st := s.Stats()
			if st.LocalAttests == 0 {
				return 0
			}
			return float64(st.TokensIssued) / float64(st.LocalAttests)
		})
	reg.GaugeFunc("sllocal_tree_footprint_bytes", "Lease tree trusted-memory footprint.", lbl,
		func() float64 { return float64(s.TreeFootprint()) })
	tree := func(name, help string, fn func() int64) {
		reg.CounterFunc(name, help, lbl, func() float64 { return float64(fn()) })
	}
	tree("sllocal_tree_commits_total", "Lease-tree records/nodes committed to untrusted memory.",
		func() int64 { return s.treeStats().Commits })
	tree("sllocal_tree_restores_total", "Lease-tree records/nodes restored from untrusted memory.",
		func() int64 { return s.treeStats().Restores })
	tree("sllocal_tree_evictions_total", "Budget-driven lease-tree evictions.",
		func() int64 { return s.treeStats().Evictions })

	s.metrics.Store(&svcMetrics{
		requestLatency: reg.Histogram("sllocal_request_latency_seconds",
			"RequestToken wall time.", nil),
		renewLatency: reg.Histogram("sllocal_renew_latency_seconds",
			"SL-Remote renewal round-trip wall time.", nil),
		tracer: tr,
	})
}

// tracerLoad returns the service tracer, nil when un-instrumented.
func (s *Service) tracerLoad() *obs.Tracer {
	if m := s.metrics.Load(); m != nil {
		return m.tracer
	}
	return nil
}

func (s *Service) treeStats() (st leasetree.TreeStats) {
	s.mu.Lock()
	tr := s.tree
	s.mu.Unlock()
	if tr == nil {
		return st
	}
	return tr.Stats()
}
