// Package sllocal implements SL-Local, the in-enclave local lease service
// of SecureLease (Section 5.2 of the paper). SL-Local runs inside Intel
// SGX on each client machine and attests license-check requests from the
// SL-Managers of applications on the same machine, eliminating the
// multi-second remote attestation from the hot path:
//
//   - it holds sub-GCLs obtained from SL-Remote in a lease tree whose cold
//     entries are committed and evicted to untrusted memory;
//   - each request is served after a local attestation with the requesting
//     enclave; a request may be granted a batch of execution tokens
//     (the paper's 10-tokens-per-attestation optimization, Section 7.3);
//   - at graceful shutdown the whole tree is committed and the root key
//     escrowed with SL-Remote; a crash forfeits everything (Section 5.7).
package sllocal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/leasetree"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/seccrypto"
	"repro/internal/sgx"
	"repro/internal/slremote"
)

// EnclaveCodeIdentity is the byte identity of the SL-Local enclave code;
// platforms that should trust SL-Local trust the measurement of this.
var EnclaveCodeIdentity = []byte("securelease/sl-local/v1")

// Errors returned by SL-Local.
var (
	// ErrNotInitialized reports use before Init.
	ErrNotInitialized = errors.New("sllocal: service not initialized")
	// ErrStopped reports use after Shutdown or Crash.
	ErrStopped = errors.New("sllocal: service stopped")
	// ErrLeaseDenied reports that no valid lease could be produced for the
	// license — expired locally and renewal refused by SL-Remote.
	ErrLeaseDenied = errors.New("sllocal: lease denied")
	// ErrAttestation reports a failed local attestation with a requester.
	ErrAttestation = errors.New("sllocal: local attestation failed")
)

// Config tunes one SL-Local instance.
type Config struct {
	// TokenBatch is the number of execution grants issued per local
	// attestation (1 = no batching; the paper evaluates 10).
	TokenBatch int
	// MemoryBudget caps the lease tree's trusted footprint in bytes;
	// 0 disables eviction.
	MemoryBudget int64
	// TreePages is the number of EPC pages reserved for SL-Local state
	// up front (the SGX model requires memory to be declared at build
	// time). Defaults to enough for the budget, minimum 16.
	TreePages int
}

// DefaultConfig returns the paper's SL-Local setup: 10-token batches and
// the ~1.6 MB footprint of Table 6.
func DefaultConfig() Config {
	return Config{
		TokenBatch:   10,
		MemoryBudget: 1600 << 10,
	}
}

func (c Config) withDefaults() Config {
	if c.TokenBatch <= 0 {
		c.TokenBatch = 1
	}
	if c.TreePages <= 0 {
		pages := int(c.MemoryBudget/sgx.PageSize) + 1
		if pages < 16 {
			pages = 16
		}
		c.TreePages = pages
	}
	return c
}

// UntrustedState is SL-Local's persistent state on the client machine's
// untrusted storage: the plaintext SLID file and the committed lease-tree
// snapshot (both useless without SL-Remote's escrowed root key). Pass the
// same UntrustedState to successive Service instances to simulate process
// restarts on one machine.
type UntrustedState struct {
	SLID     string
	Snapshot *leasetree.Snapshot
	// DirectorySealed is the sealed license→leaseID directory. Sealed to
	// the SL-Local enclave measurement; replaying an old directory can
	// only lose mappings (the authoritative counters live in the tree,
	// which is freshness-protected by the escrowed root key).
	DirectorySealed []byte
	// NextIDBlock persists the ID allocator's high-water mark.
	NextIDBlock uint32
}

// RemoteAPI is the slice of SL-Remote that SL-Local depends on. It is
// satisfied by *slremote.Server directly and by the wire package's TCP
// client, so the same Service runs embedded or against a remote daemon.
type RemoteAPI interface {
	// InitClient performs the init() handshake: quote verification, SLID
	// assignment, and escrowed-root-key release.
	InitClient(slid string, quote attest.Quote, clientMachine *sgx.Machine) (slremote.InitResult, error)
	// RenewLease runs Algorithm 1 and transfers a sub-GCL.
	RenewLease(slid, licenseID string) (slremote.Grant, error)
	// EscrowRootKey stores the lease-tree root key at graceful shutdown.
	EscrowRootKey(slid string, key seccrypto.Key) error
}

// tracedRemote is the optional extension of RemoteAPI implemented by
// remotes (the wire package's TCP client) whose RPC spans can nest under
// a caller span, so a renewal traced here and the handler span on the
// SL-Remote daemon share one TraceID. Plain RemoteAPI implementations
// (the embedded *slremote.Server) simply skip the linkage.
type tracedRemote interface {
	InitClientSpan(parent *obs.Span, slid string, quote attest.Quote, clientMachine *sgx.Machine) (slremote.InitResult, error)
	RenewLeaseSpan(parent *obs.Span, slid, licenseID string) (slremote.Grant, error)
	EscrowRootKeySpan(parent *obs.Span, slid string, key seccrypto.Key) error
}

// Deps wires a Service to its environment.
type Deps struct {
	// Machine is the client machine.
	Machine *sgx.Machine
	// Platform provides attestation on that machine.
	Platform *attest.Platform
	// Remote is the license server: an embedded *slremote.Server or the
	// wire package's TCP client.
	Remote RemoteAPI
	// Link, if non-nil, models the network to SL-Remote; its latency is
	// charged to the machine clock and drops surface as renewal errors.
	Link *netsim.Link
	// State is the persistent untrusted state; nil means a fresh machine.
	State *UntrustedState
}

// Service is one SL-Local instance. It is safe for concurrent use after
// Init.
type Service struct {
	cfg  Config
	deps Deps

	enclave *sgx.Enclave

	mu      sync.Mutex
	state   serviceState
	slid    string
	tree    *leasetree.Tree
	dir     map[string]lease.ID // license → lease ID
	nextBlk uint32              // ID allocator high-water mark
	curBlk  *leasetree.Block
	nonce   uint64

	stats   Stats
	metrics atomic.Pointer[svcMetrics]
}

type serviceState uint8

const (
	stateNew serviceState = iota
	stateRunning
	stateStopped
)

// Stats counts SL-Local events.
type Stats struct {
	Requests        int64 // license-check requests served
	TokensIssued    int64 // total execution grants issued
	LocalAttests    int64 // local attestations performed
	Renewals        int64 // round trips to SL-Remote
	RenewalFailures int64
	Denials         int64
}

// New builds an SL-Local service. Call Init before use.
func New(cfg Config, deps Deps) (*Service, error) {
	if deps.Machine == nil || deps.Platform == nil || deps.Remote == nil {
		return nil, errors.New("sllocal: machine, platform, and remote are required")
	}
	if deps.Platform.Machine() != deps.Machine {
		return nil, errors.New("sllocal: platform is bound to a different machine")
	}
	return &Service{cfg: cfg.withDefaults(), deps: deps}, nil
}

// Enclave returns the SL-Local enclave (nil before Init). Applications use
// its measurement to decide whom to attest against.
func (s *Service) Enclave() *sgx.Enclave {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enclave
}

// SLID returns the identifier assigned by SL-Remote (empty before Init).
func (s *Service) SLID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slid
}

// Stats returns a copy of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TreeFootprint returns the lease tree's trusted-memory footprint.
func (s *Service) TreeFootprint() int64 {
	s.mu.Lock()
	tr := s.tree
	s.mu.Unlock()
	if tr == nil {
		return 0
	}
	return tr.Footprint()
}

// Init performs SL-Local initialization (Section 5.2.4): create the
// enclave, remote-attest with SL-Remote via a quote, receive the SLID and
// (if a graceful shutdown preceded) the old backup key, and restore the
// saved lease tree with it.
func (s *Service) Init() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateRunning {
		return nil
	}
	if s.state == stateStopped {
		return ErrStopped
	}

	enclave, err := s.deps.Machine.CreateEnclave("sl-local", EnclaveCodeIdentity, s.cfg.TreePages)
	if err != nil {
		return fmt.Errorf("sllocal: creating enclave: %w", err)
	}
	s.enclave = enclave

	quote, err := s.deps.Platform.CreateQuote(enclave, nil)
	if err != nil {
		enclave.Destroy()
		return fmt.Errorf("sllocal: creating quote: %w", err)
	}

	var slid string
	if s.deps.State != nil {
		slid = s.deps.State.SLID
	}
	if err := s.chargeNetworkLocked(); err != nil {
		enclave.Destroy()
		return fmt.Errorf("sllocal: init unreachable: %w", err)
	}
	span := s.tracerLoad().Start("sllocal.init")
	span.Annotate("machine", s.deps.Machine.Name())
	var res slremote.InitResult
	if trm, ok := s.deps.Remote.(tracedRemote); ok {
		res, err = trm.InitClientSpan(span, slid, quote, s.deps.Machine)
	} else {
		res, err = s.deps.Remote.InitClient(slid, quote, s.deps.Machine)
	}
	span.End(err)
	if err != nil {
		enclave.Destroy()
		return fmt.Errorf("sllocal: init with SL-Remote: %w", err)
	}
	s.slid = res.SLID

	s.dir = make(map[string]lease.ID)
	s.nextBlk = 1
	restored := false
	if res.HasOBK && s.deps.State != nil && s.deps.State.Snapshot != nil {
		tree, rerr := leasetree.Restore(*s.deps.State.Snapshot, res.OBK)
		if rerr == nil {
			s.tree = tree
			restored = true
			if derr := s.restoreDirectoryLocked(); derr != nil {
				// Directory lost: the counters are intact but unmapped;
				// start a fresh tree to stay consistent.
				s.tree = leasetree.NewTree()
				s.dir = make(map[string]lease.ID)
				restored = false
			}
		}
		// A failed restore (tampered or replayed snapshot) falls through
		// to a fresh tree: the leases are gone, which is the pessimistic
		// policy's intent.
	}
	if !restored {
		s.tree = leasetree.NewTree()
	}
	if s.cfg.MemoryBudget > 0 {
		s.tree.SetBudget(s.cfg.MemoryBudget)
	}
	if s.deps.State != nil {
		s.deps.State.SLID = s.slid
		s.deps.State.Snapshot = nil // consumed; stale copies must not linger
	}
	s.state = stateRunning
	return nil
}

// restoreDirectoryLocked unseals the license directory saved at the last
// shutdown.
func (s *Service) restoreDirectoryLocked() error {
	if s.deps.State == nil || len(s.deps.State.DirectorySealed) == 0 {
		return errors.New("sllocal: no sealed directory")
	}
	plain, err := s.enclave.Unseal(s.deps.State.DirectorySealed)
	if err != nil {
		return err
	}
	dir, nextBlk, err := decodeDirectory(plain)
	if err != nil {
		return err
	}
	s.dir = dir
	s.nextBlk = nextBlk
	return nil
}

// RequestToken is the full license-check flow (Section 4.4): mutual local
// attestation with the requesting enclave, lease lookup (renewing from
// SL-Remote if the local sub-GCL is absent or exhausted), counter
// decrement, and token issuance. With batching configured, up to
// Config.TokenBatch grants are folded into the returned token.
func (s *Service) RequestToken(requester *sgx.Enclave, licenseID string) (lease.Token, error) {
	if requester == nil {
		return lease.Token{}, errors.New("sllocal: nil requester")
	}
	if m := s.metrics.Load(); m != nil {
		start := time.Now()
		defer func() { m.requestLatency.Observe(time.Since(start).Seconds()) }()
	}
	s.mu.Lock()
	switch s.state {
	case stateNew:
		s.mu.Unlock()
		return lease.Token{}, ErrNotInitialized
	case stateStopped:
		s.mu.Unlock()
		return lease.Token{}, ErrStopped
	}
	s.stats.Requests++
	enclave := s.enclave
	tree := s.tree
	s.mu.Unlock()

	// Step ❶: local attestation between SL-Manager and SL-Local, then the
	// request enters the SL-Local enclave (one ECALL). This runs outside
	// the service lock so concurrent enclaves attest in parallel — the
	// behaviour Figure 8's concurrency sweep measures.
	if err := s.deps.Platform.MutualLocalAttest(requester, enclave); err != nil {
		return lease.Token{}, fmt.Errorf("%w: %v", ErrAttestation, err)
	}
	if err := enclave.ECall(nil); err != nil {
		return lease.Token{}, err
	}
	s.mu.Lock()
	s.stats.LocalAttests++

	id, ok := s.dir[licenseID]
	if !ok {
		// First sight of this license on this machine: allocate a lease
		// slot with spatial locality and fetch a sub-GCL. Held under the
		// lock so one renewal serves concurrent first sights.
		grant, err := s.renewLocked(licenseID)
		if err != nil {
			s.stats.Denials++
			s.mu.Unlock()
			return lease.Token{}, err
		}
		id = s.allocIDLocked()
		s.dir[licenseID] = id
		rec := lease.Record{ID: id, GCL: grant.GCL, Owner: licenseID}
		if rec.GCL.Kind == lease.TimeBased && rec.GCL.LastUpdate == 0 {
			// Anchor the interval clock at install time (Section 4.3's
			// "additional state information").
			rec.GCL.LastUpdate = s.virtualNow().UnixNano()
		}
		if err := s.tree.Put(rec); err != nil {
			s.mu.Unlock()
			return lease.Token{}, fmt.Errorf("sllocal: storing lease: %w", err)
		}
	}
	s.mu.Unlock()

	// Step ❷: consume from the local GCL (the tree has its own lock);
	// step ❸ on exhaustion: renew.
	granted := 0
	want := s.cfg.TokenBatch
	consume := func(r *lease.Record) error {
		for granted < want && r.GCL.Valid() {
			if err := r.GCL.Consume(s.virtualNow()); err != nil {
				return nil // treat as exhausted; renewal below
			}
			granted++
		}
		return nil
	}
	if err := tree.Update(id, consume); err != nil {
		return lease.Token{}, fmt.Errorf("sllocal: lease update: %w", err)
	}
	if granted < want {
		// Local sub-GCL exhausted: contact SL-Remote for a renewal.
		s.mu.Lock()
		grant, err := s.renewLocked(licenseID)
		s.mu.Unlock()
		if err != nil {
			if granted > 0 {
				// Partial batch is still a valid grant.
				return s.mintToken(id, licenseID, granted), nil
			}
			s.mu.Lock()
			s.stats.Denials++
			s.mu.Unlock()
			return lease.Token{}, err
		}
		if err := s.tree.Update(id, func(r *lease.Record) error {
			r.GCL.Kind = grant.GCL.Kind
			r.GCL.Counter += grant.Units
			return consume(r)
		}); err != nil {
			return lease.Token{}, fmt.Errorf("sllocal: lease update after renewal: %w", err)
		}
	}
	if granted == 0 {
		s.mu.Lock()
		s.stats.Denials++
		s.mu.Unlock()
		return lease.Token{}, fmt.Errorf("%w: %q", ErrLeaseDenied, licenseID)
	}
	return s.mintToken(id, licenseID, granted), nil
}

// virtualNow maps the machine's cycle clock to a wall-clock instant for
// time-based lease accounting: virtual time advances as simulated work
// and SGX events are charged.
func (s *Service) virtualNow() time.Time {
	model := s.deps.Machine.Model()
	return time.Unix(0, model.CyclesToDuration(s.deps.Machine.Clock().Now()).Nanoseconds())
}

func (s *Service) mintToken(id lease.ID, licenseID string, grants int) lease.Token {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nonce++
	s.stats.TokensIssued += int64(grants)
	return lease.Token{
		LeaseID:        id,
		License:        licenseID,
		Grants:         grants,
		Nonce:          s.nonce,
		IssuedAtCycles: s.deps.Machine.Clock().Now(),
	}
}

// renewLocked fetches a sub-GCL from SL-Remote: network round trip plus
// the server-side validation of SL-Local (remote attestation, charged by
// InitClient/RenewLease paths in slremote), reported in stats.
func (s *Service) renewLocked(licenseID string) (slremote.Grant, error) {
	if err := s.chargeNetworkLocked(); err != nil {
		s.stats.RenewalFailures++
		return slremote.Grant{}, fmt.Errorf("%w: network: %v", ErrLeaseDenied, err)
	}
	// Each renewal re-validates SL-Local with SL-Remote (step ❸ of the
	// workflow): one remote attestation on this machine's timeline.
	s.deps.Machine.ChargeRemoteAttestation()
	span := s.tracerLoad().Start("sllocal.renew")
	span.Annotate("license", licenseID)
	span.Annotate("slid", s.slid)
	start := time.Now()
	var grant slremote.Grant
	var err error
	if trm, ok := s.deps.Remote.(tracedRemote); ok {
		grant, err = trm.RenewLeaseSpan(span, s.slid, licenseID)
	} else {
		grant, err = s.deps.Remote.RenewLease(s.slid, licenseID)
	}
	span.End(err)
	if m := s.metrics.Load(); m != nil {
		m.renewLatency.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		s.stats.RenewalFailures++
		return slremote.Grant{}, fmt.Errorf("%w: %v", ErrLeaseDenied, err)
	}
	s.stats.Renewals++
	return grant, nil
}

// chargeNetworkLocked models one round trip to SL-Remote.
func (s *Service) chargeNetworkLocked() error {
	if s.deps.Link == nil {
		return nil
	}
	d, err := s.deps.Link.SendWithRetry(3, 200*time.Millisecond)
	s.deps.Machine.ChargeCompute(s.deps.Machine.Model().DurationToCycles(2 * d))
	return err
}

// allocIDLocked hands out lease IDs with per-application spatial locality.
func (s *Service) allocIDLocked() lease.ID {
	for {
		if s.curBlk == nil || s.curBlk.Remaining() == 0 {
			alloc := leasetree.NewIDAllocator()
			// Fast-forward the allocator to the persisted high-water mark.
			var blk *leasetree.Block
			for i := uint32(0); i < s.nextBlk; i++ {
				blk = alloc.NextBlock()
			}
			s.curBlk = blk
			s.nextBlk++
		}
		if id, ok := s.curBlk.Next(); ok {
			return id
		}
		s.curBlk = nil
	}
}

// Shutdown performs the graceful exit of Section 5.6: commit the whole
// tree, escrow the root key with SL-Remote, seal the license directory,
// and persist the snapshot to untrusted state.
func (s *Service) Shutdown() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case stateNew:
		return ErrNotInitialized
	case stateStopped:
		return ErrStopped
	}
	snap, rootKey, err := s.tree.Shutdown()
	if err != nil {
		return fmt.Errorf("sllocal: committing tree: %w", err)
	}
	if err := s.chargeNetworkLocked(); err != nil {
		return fmt.Errorf("sllocal: escrow unreachable: %w", err)
	}
	span := s.tracerLoad().Start("sllocal.escrow")
	span.Annotate("slid", s.slid)
	if trm, ok := s.deps.Remote.(tracedRemote); ok {
		err = trm.EscrowRootKeySpan(span, s.slid, rootKey)
	} else {
		err = s.deps.Remote.EscrowRootKey(s.slid, rootKey)
	}
	span.End(err)
	if err != nil {
		return fmt.Errorf("sllocal: escrowing root key: %w", err)
	}
	if s.deps.State != nil {
		s.deps.State.SLID = s.slid
		s.deps.State.Snapshot = &snap
		sealed, serr := s.enclave.Seal(encodeDirectory(s.dir, s.nextBlk))
		if serr != nil {
			return fmt.Errorf("sllocal: sealing directory: %w", serr)
		}
		s.deps.State.DirectorySealed = sealed
		s.deps.State.NextIDBlock = s.nextBlk
	}
	s.enclave.Destroy()
	s.state = stateStopped
	return nil
}

// Crash simulates an abrupt termination: nothing is committed, nothing is
// escrowed, and SL-Remote will forfeit every lease this instance held the
// next time the machine shows up (the paper's pessimistic policy).
func (s *Service) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateRunning {
		return
	}
	if s.enclave != nil {
		s.enclave.Destroy()
	}
	s.state = stateStopped
	// The in-EPC tree is gone with the enclave; untrusted state keeps
	// whatever stale snapshot it had, which no key will ever validate.
}
