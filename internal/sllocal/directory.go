package sllocal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/lease"
)

// encodeDirectory serializes the license→leaseID directory plus the ID
// allocator high-water mark for sealing at shutdown.
func encodeDirectory(dir map[string]lease.ID, nextBlk uint32) []byte {
	size := 8
	for k := range dir {
		size += 2 + len(k) + 4
	}
	buf := make([]byte, 0, size)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(dir)))
	binary.LittleEndian.PutUint32(hdr[4:], nextBlk)
	buf = append(buf, hdr[:]...)
	for k, id := range dir {
		var rec [6]byte
		binary.LittleEndian.PutUint16(rec[0:], uint16(len(k)))
		binary.LittleEndian.PutUint32(rec[2:], uint32(id))
		buf = append(buf, rec[:2]...)
		buf = append(buf, k...)
		buf = append(buf, rec[2:]...)
	}
	return buf
}

// decodeDirectory reverses encodeDirectory.
func decodeDirectory(buf []byte) (map[string]lease.ID, uint32, error) {
	if len(buf) < 8 {
		return nil, 0, errors.New("sllocal: directory too short")
	}
	count := binary.LittleEndian.Uint32(buf[0:])
	nextBlk := binary.LittleEndian.Uint32(buf[4:])
	dir := make(map[string]lease.ID, count)
	off := 8
	for i := uint32(0); i < count; i++ {
		if off+2 > len(buf) {
			return nil, 0, fmt.Errorf("sllocal: directory truncated at entry %d", i)
		}
		klen := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if off+klen+4 > len(buf) {
			return nil, 0, fmt.Errorf("sllocal: directory truncated at entry %d", i)
		}
		key := string(buf[off : off+klen])
		off += klen
		dir[key] = lease.ID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	if off != len(buf) {
		return nil, 0, errors.New("sllocal: trailing bytes in directory")
	}
	return dir, nextBlk, nil
}
