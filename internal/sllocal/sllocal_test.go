package sllocal

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/attest"
	"repro/internal/lease"
	"repro/internal/netsim"
	"repro/internal/sgx"
	"repro/internal/slremote"
)

// testEnv bundles a machine, platform, server, and SL-Local service.
type testEnv struct {
	machine *sgx.Machine
	plat    *attest.Platform
	remote  *slremote.Server
	state   *UntrustedState
	svc     *Service
}

func newEnv(t *testing.T, cfg Config, licenses map[string]int64) *testEnv {
	t.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "client", EPCBytes: 8 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	plat, err := attest.NewPlatform("client", m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	for id, total := range licenses {
		if err := remote.RegisterLicense(id, lease.CountBased, total); err != nil {
			t.Fatalf("RegisterLicense: %v", err)
		}
	}
	state := &UntrustedState{}
	svc, err := New(cfg, Deps{Machine: m, Platform: plat, Remote: remote, State: state})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &testEnv{machine: m, plat: plat, remote: remote, state: state, svc: svc}
}

func (e *testEnv) app(t *testing.T, name string) *sgx.Enclave {
	t.Helper()
	encl, err := e.machine.CreateEnclave(name, []byte("app-"+name), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	return encl
}

// restart builds a new Service over the same machine/state (process
// restart on the same box).
func (e *testEnv) restart(t *testing.T, cfg Config) {
	t.Helper()
	svc, err := New(cfg, Deps{Machine: e.machine, Platform: e.plat, Remote: e.remote, State: e.state})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.svc = svc
	if err := svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
}

func TestInitAssignsSLID(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, nil)
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if env.svc.SLID() == "" {
		t.Fatal("no SLID after init")
	}
	if env.state.SLID != env.svc.SLID() {
		t.Fatal("SLID not persisted to untrusted state")
	}
	if env.svc.Enclave() == nil {
		t.Fatal("no enclave after init")
	}
	// Idempotent.
	if err := env.svc.Init(); err != nil {
		t.Fatalf("second Init: %v", err)
	}
}

func TestRequestBeforeInit(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, map[string]int64{"lic": 100})
	app := env.app(t, "app")
	if _, err := env.svc.RequestToken(app, "lic"); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("pre-init request: %v", err)
	}
	if err := env.svc.Shutdown(); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("pre-init shutdown: %v", err)
	}
}

func TestRequestTokenBasic(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, map[string]int64{"lic": 1000})
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	tok, err := env.svc.RequestToken(app, "lic")
	if err != nil {
		t.Fatalf("RequestToken: %v", err)
	}
	if tok.Grants != 1 || tok.License != "lic" || tok.LeaseID == 0 {
		t.Fatalf("token = %+v", tok)
	}
	if !tok.Use() {
		t.Fatal("token unusable")
	}
	st := env.svc.Stats()
	if st.Requests != 1 || st.TokensIssued != 1 || st.LocalAttests != 1 || st.Renewals != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTokenBatchingReducesAttestations(t *testing.T) {
	// Section 7.3: 10 tokens per local attestation ≈ 10× fewer attestations.
	runChecks := func(batch int) (attests int64) {
		env := newEnv(t, Config{TokenBatch: batch}, map[string]int64{"lic": 100_000})
		if err := env.svc.Init(); err != nil {
			t.Fatalf("Init: %v", err)
		}
		app := env.app(t, "app")
		const checks = 200
		issued := 0
		for issued < checks {
			tok, err := env.svc.RequestToken(app, "lic")
			if err != nil {
				t.Fatalf("RequestToken: %v", err)
			}
			for tok.Use() && issued < checks {
				issued++
			}
		}
		return env.svc.Stats().LocalAttests
	}
	single := runChecks(1)
	batched := runChecks(10)
	if single != 200 {
		t.Fatalf("unbatched attestations = %d, want 200", single)
	}
	if batched != 20 {
		t.Fatalf("batched attestations = %d, want 20", batched)
	}
}

func TestLocalRenewalOnExhaustion(t *testing.T) {
	// Grant pool small enough to force multiple renewals.
	env := newEnv(t, Config{TokenBatch: 1}, map[string]int64{"lic": 40})
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	granted := 0
	for i := 0; i < 100; i++ {
		tok, err := env.svc.RequestToken(app, "lic")
		if err != nil {
			if !errors.Is(err, ErrLeaseDenied) {
				t.Fatalf("RequestToken: %v", err)
			}
			break
		}
		granted += tok.Grants
	}
	if granted == 0 || granted > 40 {
		t.Fatalf("granted %d tokens from a 40-unit license", granted)
	}
	st := env.svc.Stats()
	if st.Renewals < 2 {
		t.Fatalf("renewals = %d, want ≥2 (forced by small sub-GCLs)", st.Renewals)
	}
	if st.Denials == 0 {
		t.Fatal("no denial after license exhaustion")
	}
}

func TestUnknownLicenseDenied(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, nil)
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	if _, err := env.svc.RequestToken(app, "ghost"); !errors.Is(err, ErrLeaseDenied) {
		t.Fatalf("unknown license: %v", err)
	}
}

func TestRemoteAttestationAmortization(t *testing.T) {
	// The paper's headline: one remote attestation per renewal instead of
	// one per license check (≈99% fewer RAs).
	env := newEnv(t, DefaultConfig(), map[string]int64{"lic": 1_000_000})
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	const checks = 5000
	issued := 0
	for issued < checks {
		tok, err := env.svc.RequestToken(app, "lic")
		if err != nil {
			t.Fatalf("RequestToken: %v", err)
		}
		for tok.Use() && issued < checks {
			issued++
		}
	}
	ras := env.machine.Stats().RemoteAttests
	// One at init, a handful for renewals.
	if ras >= checks/100 {
		t.Fatalf("remote attestations = %d for %d checks; want ≈99%% reduction", ras, checks)
	}
}

func TestShutdownRestorePreservesCounters(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, map[string]int64{"lic": 1000})
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	for i := 0; i < 5; i++ {
		if _, err := env.svc.RequestToken(app, "lic"); err != nil {
			t.Fatalf("RequestToken: %v", err)
		}
	}
	renewalsBefore := env.svc.Stats().Renewals
	outstandingBefore := env.remote.Outstanding(env.svc.SLID(), "lic")
	if err := env.svc.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if env.state.Snapshot == nil {
		t.Fatal("no snapshot persisted")
	}

	env.restart(t, Config{TokenBatch: 1})
	// The restored service must keep serving from the restored sub-GCL
	// without a new renewal.
	for i := 0; i < 5; i++ {
		if _, err := env.svc.RequestToken(app, "lic"); err != nil {
			t.Fatalf("post-restore RequestToken: %v", err)
		}
	}
	if got := env.svc.Stats().Renewals; got != 0 {
		t.Fatalf("renewals after restore = %d, want 0 (served from restored tree)", got)
	}
	_ = renewalsBefore
	if got := env.remote.Outstanding(env.svc.SLID(), "lic"); got != outstandingBefore {
		t.Fatalf("outstanding changed across graceful restart: %d → %d", outstandingBefore, got)
	}
}

func TestCrashForfeitsLeases(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, map[string]int64{"lic": 1000})
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	if _, err := env.svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("RequestToken: %v", err)
	}
	held := env.remote.Outstanding(env.svc.SLID(), "lic")
	if held == 0 {
		t.Fatal("nothing outstanding")
	}
	env.svc.Crash()
	if _, err := env.svc.RequestToken(app, "lic"); !errors.Is(err, ErrStopped) {
		t.Fatalf("request after crash: %v", err)
	}

	// On restart, SL-Remote infers the crash (no escrow) and forfeits.
	env.restart(t, Config{TokenBatch: 1})
	lic, err := env.remote.License("lic")
	if err != nil {
		t.Fatalf("License: %v", err)
	}
	if lic.Lost != held {
		t.Fatalf("lost = %d, want %d", lic.Lost, held)
	}
	// Service still works — it renews fresh sub-GCLs.
	if _, err := env.svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("post-crash RequestToken: %v", err)
	}
	if env.svc.Stats().Renewals != 1 {
		t.Fatalf("renewals = %d, want 1 (fresh grant)", env.svc.Stats().Renewals)
	}
}

func TestReplayedSnapshotRejected(t *testing.T) {
	// Attack: save the untrusted snapshot, consume leases, shut down
	// gracefully again, then replay the older snapshot. The escrowed key
	// only matches the latest snapshot, so the replay yields a fresh tree
	// (lost leases), never the stale counters.
	env := newEnv(t, Config{TokenBatch: 1}, map[string]int64{"lic": 1000})
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	if _, err := env.svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("RequestToken: %v", err)
	}
	if err := env.svc.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stale := *env.state.Snapshot // attacker's copy
	staleDir := append([]byte(nil), env.state.DirectorySealed...)

	env.restart(t, Config{TokenBatch: 1})
	// Consume many tokens, then shut down (fresh key escrowed).
	for i := 0; i < 20; i++ {
		if _, err := env.svc.RequestToken(app, "lic"); err != nil {
			t.Fatalf("RequestToken: %v", err)
		}
	}
	if err := env.svc.Shutdown(); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}

	// Replay: overwrite untrusted state with the stale copy.
	env.state.Snapshot = &stale
	env.state.DirectorySealed = staleDir
	env.restart(t, Config{TokenBatch: 1})
	// The stale snapshot must NOT have restored: first request triggers a
	// fresh renewal rather than serving from replayed counters.
	if _, err := env.svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("RequestToken: %v", err)
	}
	if got := env.svc.Stats().Renewals; got != 1 {
		t.Fatalf("renewals = %d, want 1 — replayed counters were served", got)
	}
}

func TestNetworkOutageDeniesRenewalButServesCache(t *testing.T) {
	link := netsim.NewLink(netsim.LinkConfig{Reliability: 1, Seed: 1})
	env := newEnv(t, Config{TokenBatch: 1}, map[string]int64{"lic": 10_000})
	env.svc.deps.Link = link
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	// First request renews over the healthy link and caches a sub-GCL.
	if _, err := env.svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("RequestToken: %v", err)
	}
	// Cut the network: cached grants keep the application running — the
	// paper's core offline story (Section 5.8).
	link.SetDown(true)
	for i := 0; i < 50; i++ {
		if _, err := env.svc.RequestToken(app, "lic"); err != nil {
			t.Fatalf("offline RequestToken %d: %v", i, err)
		}
	}
	// A license never seen before cannot be served offline.
	if err := env.remote.RegisterLicense("other", lease.CountBased, 100); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	if _, err := env.svc.RequestToken(app, "other"); !errors.Is(err, ErrLeaseDenied) {
		t.Fatalf("offline unseen license: %v", err)
	}
	if env.svc.Stats().RenewalFailures == 0 {
		t.Fatal("no renewal failure recorded during outage")
	}
}

func TestMultipleLicensesSpatialLocality(t *testing.T) {
	licenses := map[string]int64{}
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		licenses["plugin-"+id] = 10_000
	}
	env := newEnv(t, Config{TokenBatch: 1}, licenses)
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	seen := make(map[lease.ID]bool)
	var base lease.ID
	for licID := range licenses {
		tok, err := env.svc.RequestToken(app, licID)
		if err != nil {
			t.Fatalf("RequestToken(%s): %v", licID, err)
		}
		if seen[tok.LeaseID] {
			t.Fatalf("duplicate lease ID %d", tok.LeaseID)
		}
		seen[tok.LeaseID] = true
		if base == 0 {
			base = tok.LeaseID &^ 0xFF
		} else if tok.LeaseID&^0xFF != base {
			t.Fatalf("lease %d escaped the application's 256-ID block %#x", tok.LeaseID, base)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 5}, map[string]int64{
		"shared": 1_000_000, "solo-0": 100_000, "solo-1": 100_000,
		"solo-2": 100_000, "solo-3": 100_000,
	})
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	apps := make([]*sgx.Enclave, 8)
	for i := range apps {
		apps[i] = env.app(t, "app")
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				licID := "shared"
				if i%2 == 0 {
					licID = "solo-" + string(rune('0'+w%4))
				}
				if _, err := env.svc.RequestToken(apps[w], licID); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := env.svc.Stats().Requests; got != 400 {
		t.Fatalf("requests = %d, want 400", got)
	}
}

func TestMemoryBudgetHolds(t *testing.T) {
	const budget = 256 << 10
	licenses := map[string]int64{}
	for i := 0; i < 600; i++ {
		licenses[licName(i)] = 1000
	}
	env := newEnv(t, Config{TokenBatch: 1, MemoryBudget: budget}, licenses)
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	for i := 0; i < 600; i++ {
		if _, err := env.svc.RequestToken(app, licName(i)); err != nil {
			t.Fatalf("RequestToken(%d): %v", i, err)
		}
	}
	if got := env.svc.TreeFootprint(); got > budget {
		t.Fatalf("tree footprint %d exceeds budget %d", got, budget)
	}
}

func licName(i int) string {
	return "lic-" + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + string(rune('0'+i/676))
}

func TestNewRejectsBadDeps(t *testing.T) {
	if _, err := New(Config{}, Deps{}); err == nil {
		t.Fatal("nil deps accepted")
	}
	m1, err := sgx.NewMachine(sgx.MachineConfig{EPCBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sgx.NewMachine(sgx.MachineConfig{EPCBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	plat, err := attest.NewPlatform("p", m2)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{}, Deps{Machine: m1, Platform: plat, Remote: remote}); err == nil {
		t.Fatal("mismatched platform accepted")
	}
}

func TestDirectoryRoundTripProperty(t *testing.T) {
	f := func(keys []string, ids []uint32, nextBlk uint32) bool {
		dir := make(map[string]lease.ID)
		for i, k := range keys {
			if len(k) > 100 {
				k = k[:100]
			}
			if i < len(ids) {
				dir[k] = lease.ID(ids[i])
			} else {
				dir[k] = lease.ID(i)
			}
		}
		buf := encodeDirectory(dir, nextBlk)
		got, gotBlk, err := decodeDirectory(buf)
		if err != nil || gotBlk != nextBlk || len(got) != len(dir) {
			return false
		}
		for k, v := range dir {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDirectoryRejectsGarbage(t *testing.T) {
	if _, _, err := decodeDirectory(nil); err == nil {
		t.Fatal("nil accepted")
	}
	buf := encodeDirectory(map[string]lease.ID{"k": 1}, 2)
	if _, _, err := decodeDirectory(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, _, err := decodeDirectory(append(buf, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func BenchmarkRequestTokenBatched(b *testing.B) {
	benchRequest(b, 10)
}

func BenchmarkRequestTokenUnbatched(b *testing.B) {
	benchRequest(b, 1)
}

func benchRequest(b *testing.B, batch int) {
	m, err := sgx.NewMachine(sgx.MachineConfig{EPCBytes: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	plat, err := attest.NewPlatform("bench", m)
	if err != nil {
		b.Fatal(err)
	}
	remote, err := slremote.NewServer(slremote.DefaultConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := remote.RegisterLicense("lic", lease.CountBased, 1<<40); err != nil {
		b.Fatal(err)
	}
	svc, err := New(Config{TokenBatch: batch}, Deps{Machine: m, Platform: plat, Remote: remote})
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Init(); err != nil {
		b.Fatal(err)
	}
	app, err := m.CreateEnclave("app", []byte("app"), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.RequestToken(app, "lic"); err != nil {
			b.Fatal(err)
		}
	}
}
