package sllocal

import (
	"errors"
	"testing"
	"time"

	"repro/internal/lease"
)

// TestTimeBasedLicenseEndToEnd drives a time-based license through the
// full SL-Remote → SL-Local path: the GCL counter is discretized over
// wall-clock intervals on the machine's virtual clock, so advancing the
// clock consumes validity even while the machine is idle (Section 4.3).
func TestTimeBasedLicenseEndToEnd(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, nil)
	// A 30-interval (days in the paper; virtual seconds here) evaluation
	// license.
	if err := env.remote.RegisterLicense("lic-eval", lease.TimeBased, 30); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")

	// First request fetches the sub-GCL. The grant arrives as a counter;
	// SL-Local anchors its interval clock at install time.
	tok, err := env.svc.RequestToken(app, "lic-eval")
	if err != nil {
		t.Fatalf("RequestToken: %v", err)
	}
	if tok.Grants == 0 {
		t.Fatal("no grants on a fresh time-based lease")
	}

	// Time-based leases authorize without decrementing per execution:
	// many checks within one interval cost nothing.
	for i := 0; i < 50; i++ {
		if _, err := env.svc.RequestToken(app, "lic-eval"); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
	}
	remaining := env.remote.Outstanding(env.svc.SLID(), "lic-eval")
	if remaining == 0 {
		t.Fatal("outstanding dropped to zero without time passing")
	}
}

// TestTimeBasedLicenseExpiresWithClock advances the machine's virtual
// clock past the whole evaluation period and verifies the lease expires —
// including the paper's machine-was-off catch-up semantics: the intervals
// are charged in one step at the next check.
func TestTimeBasedLicenseExpiresWithClock(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, nil)
	// Three 1-day intervals in the pool; the client's sub-lease gets a
	// slice of them.
	if err := env.remote.RegisterLicense("lic-trial", lease.TimeBased, 3); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	if _, err := env.svc.RequestToken(app, "lic-trial"); err != nil {
		t.Fatalf("fresh trial check: %v", err)
	}

	// Advance the virtual clock by 100 days of cycles: every interval the
	// client held expires at once.
	model := env.machine.Model()
	env.machine.ChargeCompute(model.DurationToCycles(100 * 24 * time.Hour))

	denied := false
	for i := 0; i < 10 && !denied; i++ {
		if _, err := env.svc.RequestToken(app, "lic-trial"); err != nil {
			if !errors.Is(err, ErrLeaseDenied) {
				t.Fatalf("unexpected error: %v", err)
			}
			denied = true
		}
	}
	if !denied {
		t.Fatal("trial lease survived 100 virtual days")
	}
}

// TestExecTimeChargeExecution exercises the execution-time lease kind at
// the GCL level together with a count-based flow through the service, to
// pin the semantic difference: exec-time leases are charged by measured
// runtime, not per call.
func TestExecTimeChargeExecution(t *testing.T) {
	g := lease.NewExecTimeGCL(10, time.Minute)
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		if err := g.Consume(now); err != nil {
			t.Fatalf("consume %d: %v", i, err)
		}
	}
	if g.Remaining() != 10 {
		t.Fatalf("per-call consumption charged an exec-time lease: %d", g.Remaining())
	}
	g.ChargeExecution(9 * time.Minute)
	if g.Remaining() != 1 {
		t.Fatalf("remaining = %d, want 1", g.Remaining())
	}
	g.ChargeExecution(2 * time.Minute)
	if err := g.Consume(now); !errors.Is(err, lease.ErrExpired) {
		t.Fatalf("expired exec-time lease authorized: %v", err)
	}
}

// TestPerpetualLicenseEndToEnd drives a perpetual (seat) license through
// the stack: one renewal activates it forever; no further renewals occur
// no matter how many checks run.
func TestPerpetualLicenseEndToEnd(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 10}, nil)
	if err := env.remote.RegisterLicense("lic-seat", lease.Perpetual, 2); err != nil {
		t.Fatalf("RegisterLicense: %v", err)
	}
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	for i := 0; i < 500; i++ {
		if _, err := env.svc.RequestToken(app, "lic-seat"); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
	}
	if got := env.svc.Stats().Renewals; got != 1 {
		t.Fatalf("renewals = %d, want 1 (single seat activation)", got)
	}
	// The pool only lost one seat.
	lic, err := env.remote.License("lic-seat")
	if err != nil {
		t.Fatalf("License: %v", err)
	}
	if lic.Remaining != 1 {
		t.Fatalf("remaining seats = %d, want 1", lic.Remaining)
	}
}

// TestRevocationPropagatesOnRenewal pins Section 4.3's revocation story:
// cached grants drain, then the next renewal fails.
func TestRevocationPropagatesOnRenewal(t *testing.T) {
	env := newEnv(t, Config{TokenBatch: 1}, map[string]int64{"lic": 1_000_000})
	if err := env.svc.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	app := env.app(t, "app")
	if _, err := env.svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("RequestToken: %v", err)
	}
	if err := env.remote.Revoke("lic"); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	// Cached sub-GCL still serves...
	if _, err := env.svc.RequestToken(app, "lic"); err != nil {
		t.Fatalf("cached check after revocation: %v", err)
	}
	// ...but once it drains, denial.
	denied := false
	for i := 0; i < 1_000_000 && !denied; i++ {
		if _, err := env.svc.RequestToken(app, "lic"); err != nil {
			if !errors.Is(err, ErrLeaseDenied) {
				t.Fatalf("unexpected error: %v", err)
			}
			denied = true
		}
	}
	if !denied {
		t.Fatal("revoked license never stopped serving")
	}
}
