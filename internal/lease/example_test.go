package lease_test

import (
	"fmt"
	"time"

	"repro/internal/lease"
)

// ExampleGCL_Consume shows how one GCL abstraction models a count-based
// license: each execution decrements the counter until expiry.
func ExampleGCL_Consume() {
	g := lease.NewCountGCL(3)
	now := time.Unix(0, 0)
	for i := 0; i < 4; i++ {
		err := g.Consume(now)
		fmt.Printf("run %d: remaining=%d err=%v\n", i+1, g.Remaining(), err)
	}
	// Output:
	// run 1: remaining=2 err=<nil>
	// run 2: remaining=1 err=<nil>
	// run 3: remaining=0 err=<nil>
	// run 4: remaining=0 err=lease: expired
}

// ExampleNewTimeGCL shows the paper's 30-day evaluation license: time is
// discretized into one-day intervals, and intervals spent powered off are
// charged in one catch-up step.
func ExampleNewTimeGCL() {
	start := time.Date(2022, 11, 7, 0, 0, 0, 0, time.UTC)
	g := lease.NewTimeGCL(30, 24*time.Hour, start)

	_ = g.Consume(start.Add(2 * time.Hour)) // same day
	fmt.Println("day 0:", g.Remaining())

	_ = g.Consume(start.Add(10 * 24 * time.Hour)) // machine was off
	fmt.Println("day 10:", g.Remaining())

	err := g.Consume(start.Add(40 * 24 * time.Hour))
	fmt.Println("day 40:", g.Remaining(), err)
	// Output:
	// day 0: 30
	// day 10: 20
	// day 40: 0 lease: expired
}

// ExampleRecord_MarshalBinary shows the 312-byte lease record of
// Section 5.2.2 round-tripping through its on-EPC encoding.
func ExampleRecord_MarshalBinary() {
	rec := lease.Record{
		ID:    345,
		GCL:   lease.NewCountGCL(100),
		Owner: "matlab-signal-toolbox",
	}
	buf, _ := rec.MarshalBinary()
	var back lease.Record
	_ = back.UnmarshalBinary(buf)
	fmt.Printf("%d bytes, id=%d owner=%q remaining=%d\n",
		len(buf), back.ID, back.Owner, back.GCL.Remaining())
	// Output:
	// 312 bytes, id=345 owner="matlab-signal-toolbox" remaining=100
}

// ExampleID_Level shows how a lease ID's bytes index the four levels of
// the lease tree, like a page-table walk.
func ExampleID_Level() {
	id := lease.ID(0x01020304)
	fmt.Println(id.Level(0), id.Level(1), id.Level(2), id.Level(3))
	// Output:
	// 1 2 3 4
}
