package lease

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestIDLevelIndexing(t *testing.T) {
	// The paper's running example: the ID's bytes index the four tree
	// levels, most significant byte first.
	id := ID(0x01020304)
	want := []uint8{1, 2, 3, 4}
	for l := 0; l < 4; l++ {
		if got := id.Level(l); got != want[l] {
			t.Fatalf("Level(%d) = %d, want %d", l, got, want[l])
		}
	}
	if id.Level(-1) != 0 || id.Level(4) != 0 {
		t.Fatal("out-of-range levels should return 0")
	}
}

func TestIDLevelProperty(t *testing.T) {
	// Property: reassembling the four level indices reconstructs the ID.
	f := func(raw uint32) bool {
		id := ID(raw)
		var back uint32
		for l := 0; l < 4; l++ {
			back = back<<8 | uint32(id.Level(l))
		}
		return back == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		CountBased:    "count",
		TimeBased:     "time",
		ExecTimeBased: "exec-time",
		Perpetual:     "perpetual",
		Kind(99):      "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestCountGCLConsume(t *testing.T) {
	g := NewCountGCL(3)
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if err := g.Consume(now); err != nil {
			t.Fatalf("consume %d: %v", i, err)
		}
	}
	if g.Valid() {
		t.Fatal("lease still valid after exhausting its count")
	}
	if err := g.Consume(now); !errors.Is(err, ErrExpired) {
		t.Fatalf("consume after exhaustion: got %v, want ErrExpired", err)
	}
}

func TestTimeGCLDiscretization(t *testing.T) {
	// A 30-day evaluation lease discretized into 1-day intervals
	// (the paper's Section 4.3 example).
	start := time.Date(2022, 11, 7, 0, 0, 0, 0, time.UTC)
	g := NewTimeGCL(30, 24*time.Hour, start)

	// Same day: no intervals consumed.
	if err := g.Consume(start.Add(6 * time.Hour)); err != nil {
		t.Fatalf("same-day consume: %v", err)
	}
	if g.Remaining() != 30 {
		t.Fatalf("remaining = %d, want 30", g.Remaining())
	}

	// Ten days later, even with the machine off in between, ten intervals
	// are charged at once.
	if err := g.Consume(start.Add(10*24*time.Hour + time.Hour)); err != nil {
		t.Fatalf("day-10 consume: %v", err)
	}
	if g.Remaining() != 20 {
		t.Fatalf("remaining = %d, want 20", g.Remaining())
	}

	// Far past the end: expired, counter clamped at zero.
	if err := g.Consume(start.Add(100 * 24 * time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("after expiry: got %v, want ErrExpired", err)
	}
	if g.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", g.Remaining())
	}
}

func TestTimeGCLClockGoingBackwards(t *testing.T) {
	start := time.Unix(10_000, 0)
	g := NewTimeGCL(5, time.Hour, start)
	if err := g.Consume(start.Add(-48 * time.Hour)); err != nil {
		t.Fatalf("backwards consume: %v", err)
	}
	if g.Remaining() != 5 {
		t.Fatalf("backwards clock charged intervals: remaining = %d", g.Remaining())
	}
}

func TestExecTimeGCL(t *testing.T) {
	g := NewExecTimeGCL(10, time.Minute) // 10 minutes of execution
	now := time.Unix(0, 0)
	if err := g.Consume(now); err != nil {
		t.Fatalf("consume: %v", err)
	}
	g.ChargeExecution(150 * time.Second) // 2.5 min → rounds up to 3
	if g.Remaining() != 7 {
		t.Fatalf("remaining = %d, want 7", g.Remaining())
	}
	g.ChargeExecution(time.Hour) // overshoot clamps at zero
	if g.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", g.Remaining())
	}
	if err := g.Consume(now); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired exec-time lease: got %v", err)
	}
	// Charging other kinds is a no-op.
	c := NewCountGCL(5)
	c.ChargeExecution(time.Hour)
	if c.Remaining() != 5 {
		t.Fatal("ChargeExecution touched a count-based lease")
	}
}

func TestPerpetualGCL(t *testing.T) {
	g := NewPerpetualGCL()
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if err := g.Consume(now); err != nil {
			t.Fatalf("perpetual consume %d: %v", i, err)
		}
	}
	g.Revoke()
	if err := g.Consume(now); !errors.Is(err, ErrExpired) {
		t.Fatalf("revoked perpetual lease: got %v, want ErrExpired", err)
	}
}

func TestGCLValidate(t *testing.T) {
	cases := []struct {
		name string
		g    GCL
		ok   bool
	}{
		{"count ok", NewCountGCL(5), true},
		{"zero kind", GCL{}, false},
		{"unknown kind", GCL{Kind: Kind(42), Counter: 1}, false},
		{"negative counter", GCL{Kind: CountBased, Counter: -1}, false},
		{"time without interval", GCL{Kind: TimeBased, Counter: 5}, false},
		{"exec-time without interval", GCL{Kind: ExecTimeBased, Counter: 5}, false},
		{"perpetual ok", NewPerpetualGCL(), true},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed unexpectedly", tc.name)
		}
	}
}

func TestConsumeInvalidKind(t *testing.T) {
	g := GCL{Kind: Kind(42), Counter: 1}
	if err := g.Consume(time.Unix(0, 0)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid kind consume: got %v, want ErrInvalid", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := Record{
		ID:    0xDEADBEEF,
		GCL:   NewTimeGCL(30, 24*time.Hour, time.Unix(1_600_000_000, 0)),
		Owner: "matlab-toolbox-signal",
	}
	buf, err := r.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(buf) != RecordSize {
		t.Fatalf("record is %d bytes, want %d (paper Section 5.2.2)", len(buf), RecordSize)
	}
	var got Record
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if got != r {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestRecordLayoutConstants(t *testing.T) {
	if RecordDataSize != 300 {
		t.Fatalf("data area = %d bytes, want 300 per the paper", RecordDataSize)
	}
	if RecordSize != 312 {
		t.Fatalf("record = %d bytes, want 312 per the paper", RecordSize)
	}
}

func TestRecordDetectsTamper(t *testing.T) {
	r := Record{ID: 7, GCL: NewCountGCL(100), Owner: "lic"}
	buf, err := r.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	// Bump the counter field directly (a classic in-memory patch attack).
	buf[4+8+4+1] ^= 0xFF
	var got Record
	if err := got.UnmarshalBinary(buf); !errors.Is(err, ErrInvalid) {
		t.Fatalf("tampered record accepted: %v", err)
	}
}

func TestRecordRejectsBadSizes(t *testing.T) {
	var r Record
	if err := r.UnmarshalBinary(make([]byte, RecordSize-1)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("short buffer: got %v", err)
	}
	if err := r.UnmarshalBinary(make([]byte, RecordSize+1)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("long buffer: got %v", err)
	}
}

func TestRecordRejectsOversizeOwner(t *testing.T) {
	owner := make([]byte, MaxOwnerLen+1)
	for i := range owner {
		owner[i] = 'x'
	}
	r := Record{ID: 1, GCL: NewCountGCL(1), Owner: string(owner)}
	if _, err := r.MarshalBinary(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("oversize owner: got %v", err)
	}
}

func TestRecordMaxOwnerFits(t *testing.T) {
	owner := make([]byte, MaxOwnerLen)
	for i := range owner {
		owner[i] = 'a'
	}
	r := Record{ID: 1, GCL: NewCountGCL(1), Owner: string(owner)}
	buf, err := r.MarshalBinary()
	if err != nil {
		t.Fatalf("max-size owner: %v", err)
	}
	var got Record
	if err := got.UnmarshalBinary(buf); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if got.Owner != r.Owner {
		t.Fatal("owner mismatch at max length")
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(id uint32, counter uint16, ownerRaw []byte) bool {
		owner := ownerRaw
		if len(owner) > 64 {
			owner = owner[:64]
		}
		r := Record{
			ID:    ID(id),
			GCL:   NewCountGCL(int64(counter)),
			Owner: string(owner),
		}
		buf, err := r.MarshalBinary()
		if err != nil {
			return false
		}
		var got Record
		if err := got.UnmarshalBinary(buf); err != nil {
			return false
		}
		return got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenUse(t *testing.T) {
	tok := Token{LeaseID: 9, License: "lic", Grants: 2, Nonce: 42}
	if !tok.Use() || !tok.Use() {
		t.Fatal("grants not usable")
	}
	if tok.Use() {
		t.Fatal("token over-granted")
	}
	if tok.Grants != 0 {
		t.Fatalf("grants = %d, want 0", tok.Grants)
	}
}

func BenchmarkRecordMarshal(b *testing.B) {
	r := Record{ID: 345, GCL: NewCountGCL(1000), Owner: "bench-license"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordUnmarshal(b *testing.B) {
	r := Record{ID: 345, GCL: NewCountGCL(1000), Owner: "bench-license"}
	buf, err := r.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got Record
		if err := got.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}
