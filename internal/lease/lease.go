// Package lease implements SecureLease's generalized count-based lease
// (GCL) abstraction (Section 4.3 of the paper) and the 312-byte lease
// record that SL-Local stores at the leaves of its lease tree.
//
// A GCL is a counter plus a decrement criterion. Every commercial license
// flavor maps onto it:
//
//   - count-based: the counter is the number of remaining executions and
//     decrements once per execution;
//   - time-based ("valid for 30 days"): time is discretized into intervals
//     and the counter decrements once per elapsed interval, using stored
//     state to catch up across power-off periods;
//   - execution-time-based: the counter decrements per unit of accumulated
//     execution time;
//   - perpetual: the decrement is vacuous — a binary activated/revoked flag.
//
// Revocation sets the counter to zero in every case.
package lease

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// ID is a 32-bit lease identifier. Its bits index the four levels of the
// lease tree, 8 bits per level (Section 5.2.2).
type ID uint32

// Level extracts the 8-bit index for tree level l (0 = root). Level 0 uses
// the most significant byte, matching the paper's running example.
func (id ID) Level(l int) uint8 {
	if l < 0 || l > 3 {
		return 0
	}
	return uint8(id >> (8 * (3 - uint(l))))
}

// Kind enumerates the license flavors modeled over a GCL.
type Kind uint8

// Lease kinds. Values start at one so the zero value is invalid and
// unmarshaling catches uninitialized records.
const (
	// CountBased restricts the number of executions.
	CountBased Kind = iota + 1
	// TimeBased is valid for a fixed number of wall-time intervals.
	TimeBased
	// ExecTimeBased restricts total accumulated execution time.
	ExecTimeBased
	// Perpetual never expires unless revoked.
	Perpetual
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case CountBased:
		return "count"
	case TimeBased:
		return "time"
	case ExecTimeBased:
		return "exec-time"
	case Perpetual:
		return "perpetual"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

func (k Kind) valid() bool {
	return k >= CountBased && k <= Perpetual
}

// GCL is a generalized count-based lease: the counter, the criterion that
// modifies it, and the state needed to apply the criterion across restarts.
type GCL struct {
	Kind Kind
	// Counter is the remaining budget: executions for CountBased,
	// intervals for TimeBased, time units for ExecTimeBased, and 1/0
	// (active/revoked) for Perpetual.
	Counter int64
	// Interval is the discretization step for TimeBased and ExecTimeBased
	// leases (e.g. one day for a 30-day trial).
	Interval time.Duration
	// LastUpdate records when the counter was last brought up to date
	// (TimeBased only), as nanoseconds since the Unix epoch, so that
	// off-time is accounted for at the next power-on.
	LastUpdate int64
}

// Errors produced by GCL operations.
var (
	// ErrExpired reports a lease whose counter has reached zero.
	ErrExpired = errors.New("lease: expired")
	// ErrInvalid reports a structurally invalid lease or GCL.
	ErrInvalid = errors.New("lease: invalid")
)

// NewCountGCL returns a count-based GCL allowing n executions.
func NewCountGCL(n int64) GCL {
	return GCL{Kind: CountBased, Counter: n}
}

// NewTimeGCL returns a time-based GCL valid for intervals steps of length
// interval, anchored at start.
func NewTimeGCL(intervals int64, interval time.Duration, start time.Time) GCL {
	return GCL{Kind: TimeBased, Counter: intervals, Interval: interval, LastUpdate: start.UnixNano()}
}

// NewExecTimeGCL returns an execution-time-based GCL allowing units steps
// of execution of length interval each.
func NewExecTimeGCL(units int64, interval time.Duration) GCL {
	return GCL{Kind: ExecTimeBased, Counter: units, Interval: interval}
}

// NewPerpetualGCL returns an activated perpetual GCL.
func NewPerpetualGCL() GCL {
	return GCL{Kind: Perpetual, Counter: 1}
}

// Validate reports structural problems with the GCL.
func (g GCL) Validate() error {
	if !g.Kind.valid() {
		return fmt.Errorf("%w: unknown kind %d", ErrInvalid, g.Kind)
	}
	if g.Counter < 0 {
		return fmt.Errorf("%w: negative counter %d", ErrInvalid, g.Counter)
	}
	if (g.Kind == TimeBased || g.Kind == ExecTimeBased) && g.Interval <= 0 {
		return fmt.Errorf("%w: %s lease requires a positive interval", ErrInvalid, g.Kind)
	}
	return nil
}

// Valid reports whether the lease still authorizes execution.
func (g GCL) Valid() bool {
	return g.Counter > 0
}

// Revoke expires the lease immediately by zeroing the counter.
func (g *GCL) Revoke() {
	g.Counter = 0
}

// Consume applies one execution request at virtual/wall time now, charging
// the GCL per its kind, and reports whether execution is authorized:
//
//   - CountBased: decrements the counter by one.
//   - TimeBased: first catches the counter up for intervals elapsed since
//     LastUpdate (handles machines that were powered off), then authorizes
//     without additional charge.
//   - ExecTimeBased: charges nothing here; call ChargeExecution with the
//     measured run time afterwards.
//   - Perpetual: authorizes while activated.
//
// Consume returns ErrExpired once the counter reaches zero.
func (g *GCL) Consume(now time.Time) error {
	switch g.Kind {
	case CountBased:
		if g.Counter <= 0 {
			return ErrExpired
		}
		g.Counter--
		return nil
	case TimeBased:
		g.catchUp(now)
		if g.Counter <= 0 {
			return ErrExpired
		}
		return nil
	case ExecTimeBased, Perpetual:
		if g.Counter <= 0 {
			return ErrExpired
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrInvalid, g.Kind)
	}
}

// ChargeExecution charges elapsed execution time against an ExecTimeBased
// lease, rounding up to whole intervals. It is a no-op for other kinds.
func (g *GCL) ChargeExecution(elapsed time.Duration) {
	if g.Kind != ExecTimeBased || elapsed <= 0 || g.Interval <= 0 {
		return
	}
	units := int64((elapsed + g.Interval - 1) / g.Interval)
	if units > g.Counter {
		units = g.Counter
	}
	g.Counter -= units
}

// catchUp advances a TimeBased counter for wall time elapsed since the last
// update. If the machine was off for several intervals, all of them are
// charged at once, exactly as Section 4.3 prescribes.
func (g *GCL) catchUp(now time.Time) {
	if g.Interval <= 0 {
		return
	}
	last := time.Unix(0, g.LastUpdate)
	if !now.After(last) {
		return
	}
	elapsed := now.Sub(last)
	intervals := int64(elapsed / g.Interval)
	if intervals <= 0 {
		return
	}
	if intervals > g.Counter {
		intervals = g.Counter
	}
	g.Counter -= intervals
	g.LastUpdate = last.Add(time.Duration(intervals) * g.Interval).UnixNano()
}

// Remaining returns the counter value.
func (g GCL) Remaining() int64 { return g.Counter }

// Record layout constants (Section 5.2.2: "The size of a lease is 312 B.
// It contains a 32-bit lock, 64-bit hash, and 300 B for the lease data.")
const (
	// RecordSize is the on-EPC size of one lease record.
	RecordSize = 312
	// recordLockSize is the embedded spinlock word.
	recordLockSize = 4
	// recordHashSize is the integrity hash field.
	recordHashSize = 8
	// RecordDataSize is the lease payload area.
	RecordDataSize = RecordSize - recordLockSize - recordHashSize // 300
)

// fixed header inside the 300-byte data area
const recordHeaderSize = 4 /*id*/ + 1 /*kind*/ + 8 /*counter*/ + 8 /*interval*/ + 8 /*lastUpdate*/ + 2 /*ownerLen*/

// MaxOwnerLen is the longest owner/license string a record can carry.
const MaxOwnerLen = RecordDataSize - recordHeaderSize

// Record is one lease as stored at a leaf of the lease tree: a lease ID,
// its GCL, and the owning license identifier, serialized into exactly
// RecordSize bytes. The lock word exists in the layout (and is what
// sgx_spin_lock protects in the paper); the Go implementation locks at the
// tree level instead and keeps the word for layout fidelity.
type Record struct {
	ID    ID
	GCL   GCL
	Owner string // license identifier this lease belongs to
}

// Validate reports structural problems with the record.
func (r Record) Validate() error {
	if err := r.GCL.Validate(); err != nil {
		return err
	}
	if len(r.Owner) > MaxOwnerLen {
		return fmt.Errorf("%w: owner length %d exceeds %d bytes", ErrInvalid, len(r.Owner), MaxOwnerLen)
	}
	return nil
}

// MarshalBinary encodes the record into exactly RecordSize bytes with an
// integrity hash over the data area.
func (r Record) MarshalBinary() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, RecordSize)
	data := buf[recordLockSize+recordHashSize:]
	binary.LittleEndian.PutUint32(data[0:], uint32(r.ID))
	data[4] = byte(r.GCL.Kind)
	binary.LittleEndian.PutUint64(data[5:], uint64(r.GCL.Counter))
	binary.LittleEndian.PutUint64(data[13:], uint64(r.GCL.Interval))
	binary.LittleEndian.PutUint64(data[21:], uint64(r.GCL.LastUpdate))
	binary.LittleEndian.PutUint16(data[29:], uint16(len(r.Owner)))
	copy(data[recordHeaderSize:], r.Owner)
	binary.LittleEndian.PutUint64(buf[recordLockSize:], recordHash(data))
	return buf, nil
}

// UnmarshalBinary decodes a RecordSize-byte buffer, verifying the embedded
// integrity hash.
func (r *Record) UnmarshalBinary(buf []byte) error {
	if len(buf) != RecordSize {
		return fmt.Errorf("%w: record is %d bytes, want %d", ErrInvalid, len(buf), RecordSize)
	}
	data := buf[recordLockSize+recordHashSize:]
	want := binary.LittleEndian.Uint64(buf[recordLockSize:])
	if recordHash(data) != want {
		return fmt.Errorf("%w: integrity hash mismatch", ErrInvalid)
	}
	ownerLen := int(binary.LittleEndian.Uint16(data[29:]))
	if ownerLen > MaxOwnerLen {
		return fmt.Errorf("%w: owner length %d", ErrInvalid, ownerLen)
	}
	r.ID = ID(binary.LittleEndian.Uint32(data[0:]))
	r.GCL = GCL{
		Kind:       Kind(data[4]),
		Counter:    int64(binary.LittleEndian.Uint64(data[5:])),
		Interval:   time.Duration(binary.LittleEndian.Uint64(data[13:])),
		LastUpdate: int64(binary.LittleEndian.Uint64(data[21:])),
	}
	r.Owner = string(data[recordHeaderSize : recordHeaderSize+ownerLen])
	return r.Validate()
}

// recordHash is the record's 64-bit FNV-1a integrity hash. Tampering with
// the data area without recomputing it is detectable; stronger protection
// (AES + fresh keys) applies when records leave the EPC (Algorithm 2).
func recordHash(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Token is a token of execution (Section 4.4, step ❷): SL-Local's grant to
// an SL-Manager that execution may proceed. Grants is the number of
// executions authorized by this token — the paper's batching optimization
// issues 10 grants per local attestation (Section 7.3).
type Token struct {
	LeaseID ID
	License string
	Grants  int
	Nonce   uint64
	// IssuedAtCycles timestamps the token on the issuing machine's
	// virtual clock, for audit and expiry policies.
	IssuedAtCycles int64
}

// Use consumes one grant from the token, reporting whether a grant was
// available.
func (t *Token) Use() bool {
	if t.Grants <= 0 {
		return false
	}
	t.Grants--
	return true
}
