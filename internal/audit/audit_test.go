package audit

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/seccrypto"
	"repro/internal/store"
)

func testKey(t testing.TB) seccrypto.Key {
	t.Helper()
	key, err := seccrypto.KeyFromBytes(bytes.Repeat([]byte{0xA7}, seccrypto.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// appendLifecycle writes the issue → renew → crash-forfeit arc the
// acceptance criteria name.
func appendLifecycle(t testing.TB, l *Log) {
	t.Helper()
	recs := []Record{
		{Op: OpIssue, License: "lic", Units: 1000},
		{Op: OpInit, SLID: "SL-1"},
		{Op: OpRenew, SLID: "SL-1", License: "lic", Units: 250,
			Alg1: &Alg1{Alpha: 1, ScaleDown: 4, Health: 1, Reliability: 1, ExpectedLoss: 250}},
		{Op: OpCrashForfeit, SLID: "SL-1", License: "lic", Units: 250},
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append(%s): %v", rec.Op, err)
		}
	}
}

func TestAuditChainAppendAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := Open(path, testKey(t))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendLifecycle(t, l)
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify on intact chain: %v", err)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0].Op != OpRenew || tail[1].Op != OpCrashForfeit {
		t.Fatalf("Tail(2) = %+v", tail)
	}
	if tail[0].Alg1 == nil || tail[0].Alg1.Alpha != 1 || tail[0].Alg1.ScaleDown != 4 {
		t.Fatalf("renew record lost its Algorithm-1 inputs: %+v", tail[0].Alg1)
	}
	head := l.HeadHash()
	if head == ([32]byte{}) {
		t.Fatal("head hash still zero after appends")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the chain continues from the persisted head.
	l2, err := Open(path, testKey(t))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Len() != 4 || l2.HeadHash() != head {
		t.Fatalf("reopen: len %d head %x, want 4 / %x", l2.Len(), l2.HeadHash(), head)
	}
	if err := l2.Append(Record{Op: OpEscrow, SLID: "SL-1"}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := l2.Verify(); err != nil {
		t.Fatalf("Verify after reopen append: %v", err)
	}
	// Sequence numbers stay contiguous across the restart.
	all := l2.Tail(0)
	if len(all) != 5 {
		t.Fatalf("Tail(0) = %d records, want 5", len(all))
	}
	for i, rec := range all {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
	}
}

func TestAuditVerifyDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := Open(path, testKey(t))
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, l)

	// Flip one payload byte of the first sealed record while the log is
	// still open: the live Verify must fail loudly.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[8] ^= 0x01 // first byte past the first frame header
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err == nil {
		t.Fatal("Verify accepted a flipped byte")
	}
	_ = l.Close()
	// And a fresh Open refuses the log outright.
	if _, err := Open(path, testKey(t)); err == nil {
		t.Fatal("Open accepted a flipped byte")
	}
}

func TestAuditVerifyDetectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := Open(path, testKey(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: OpIssue, License: "lic", Units: 10}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := fi.Size() // frame boundary after record 1
	if err := l.Append(Record{Op: OpRevoke, License: "lic"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify before truncation: %v", err)
	}
	// Roll the file back to exactly one record: the file alone still walks
	// cleanly, so only the head comparison can catch it.
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	if seq, _, err := VerifyFile(path, testKey(t)); err != nil || seq != 1 {
		t.Fatalf("VerifyFile on rolled-back file = seq %d, %v", seq, err)
	}
	err = l.Verify()
	if err == nil {
		t.Fatal("Verify accepted a rolled-back chain")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation error = %v, want mention of truncation", err)
	}
	_ = l.Close()
}

func TestAuditVerifyDetectsReorder(t *testing.T) {
	key := testKey(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.log")
	l, err := Open(path, key)
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	sealed, err := store.ReadAppendFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the log with records 2 and 3 swapped: every sealed frame is
	// individually authentic, so only the chain walk can object.
	swapped := filepath.Join(dir, "swapped.log")
	out, _, err := store.OpenAppendFile(swapped)
	if err != nil {
		t.Fatal(err)
	}
	order := []int{0, 2, 1, 3}
	for _, i := range order {
		if err := out.Append(sealed[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyFile(swapped, key); err == nil {
		t.Fatal("VerifyFile accepted reordered records")
	}
	if _, err := Open(swapped, key); err == nil {
		t.Fatal("Open accepted reordered records")
	}
}

func TestAuditWrongKeyRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := Open(path, testKey(t))
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wrong, err := seccrypto.NewKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyFile(path, wrong); err == nil ||
		!strings.Contains(err.Error(), "seal validation failed") {
		t.Fatalf("VerifyFile with wrong key = %v, want seal failure", err)
	}
}

func TestAuditMemoryOnly(t *testing.T) {
	l, err := Open("", seccrypto.Key{})
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, l)
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatalf("memory-only Verify: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditNilLog(t *testing.T) {
	var l *Log
	if err := l.Append(Record{Op: OpIssue}); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 || l.Tail(5) != nil || l.HeadHash() != ([32]byte{}) {
		t.Fatal("nil log produced state")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l.ExposeMetrics(obs.NewRegistry())
}

func TestAuditMetricsAndHTTP(t *testing.T) {
	l, err := Open("", seccrypto.Key{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	l.ExposeMetrics(reg)
	appendLifecycle(t, l)
	snap := reg.Snapshot()
	if got := snap.Get("audit_records_total", map[string]string{"op": OpRenew}); got != 1 {
		t.Errorf("audit_records_total{op=renew} = %v, want 1", got)
	}
	if got := snap.Get("audit_chain_length", nil); got != 4 {
		t.Errorf("audit_chain_length = %v, want 4", got)
	}
	if got := snap.Get("audit_append_failures_total", nil); got != 0 {
		t.Errorf("audit_append_failures_total = %v, want 0", got)
	}
}

func BenchmarkAuditAppendMemory(b *testing.B) {
	l, err := Open("", seccrypto.Key{})
	if err != nil {
		b.Fatal(err)
	}
	rec := Record{Op: OpRenew, SLID: "SL-1", License: "lic", Units: 128,
		Alg1: &Alg1{Alpha: 0.5, ScaleDown: 4, Health: 1, Reliability: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuditAppendSealed(b *testing.B) {
	l, err := Open(filepath.Join(b.TempDir(), "audit.log"), testKey(b))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := Record{Op: OpRenew, SLID: "SL-1", License: "lic", Units: 128,
		Alg1: &Alg1{Alpha: 0.5, ScaleDown: 4, Health: 1, Reliability: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuditVerify(b *testing.B) {
	l, err := Open(filepath.Join(b.TempDir(), "audit.log"), testKey(b))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 256; i++ {
		if err := l.Append(Record{Op: OpRenew, SLID: "SL-1", License: "lic", Units: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
