// Package audit is SecureLease's tamper-evident lease-audit log: an
// append-only record of every lease lifecycle decision SL-Remote makes —
// license issue, Algorithm-1 renewals with their full inputs, denials,
// revocations, escrows, and crash forfeits — so execution-control
// decisions can be reconstructed and disputed after the fact.
//
// Integrity comes from two layers. Each record carries the SHA-256 of the
// previous record's plaintext (a hash chain: removing, reordering, or
// rewriting any interior record breaks every subsequent link), and each
// record is sealed at rest with AES-GCM (seccrypto.ProtectWithKey), so a
// party without the seal key cannot forge a replacement chain. On disk the
// sealed records ride the store package's CRC-framed append-only file;
// Verify re-walks the whole file and fails loudly on any break.
package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/seccrypto"
	"repro/internal/store"
)

// Record operations.
const (
	OpIssue        = "issue"         // license registered
	OpRenew        = "renew"         // Algorithm-1 renewal granted
	OpDeny         = "deny"          // renewal refused
	OpRevoke       = "revoke"        // license revoked
	OpInit         = "init"          // client init() handshake accepted
	OpEscrow       = "escrow"        // root key escrowed at graceful shutdown
	OpCrashForfeit = "crash_forfeit" // outstanding lease forfeited (pessimistic policy)
)

// Alg1 captures the Algorithm-1 state behind one renewal decision: the
// concurrency share α_i, the configured scale-down D (as effectively
// applied), the health h_i and observed network reliability n_i used, and
// the expected loss after the grant.
type Alg1 struct {
	Alpha        float64 `json:"alpha"`
	ScaleDown    float64 `json:"scale_down"`
	Health       float64 `json:"health"`
	Reliability  float64 `json:"reliability"`
	ExpectedLoss float64 `json:"expected_loss,omitempty"`
}

// Record is one audit-log entry. Seq, Time, and PrevHash are assigned by
// Append; everything else is caller-supplied.
type Record struct {
	// Seq numbers records from 1, contiguously.
	Seq uint64 `json:"seq"`
	// Time is the append wall-clock time in Unix nanoseconds.
	Time int64 `json:"time"`
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// SLID is the client involved, if any.
	SLID string `json:"slid,omitempty"`
	// License is the license involved, if any.
	License string `json:"license,omitempty"`
	// Units is the grant/forfeit/issue size in lease units.
	Units int64 `json:"units,omitempty"`
	// Alg1 carries the renewal decision's inputs (renew records only).
	Alg1 *Alg1 `json:"alg1,omitempty"`
	// Err is the refusal reason (deny records).
	Err string `json:"err,omitempty"`
	// PrevHash is the SHA-256 of the previous record's plaintext encoding;
	// all zeros for the first record.
	PrevHash []byte `json:"prev_hash"`
}

// tailCap bounds the in-memory window served by the /audit endpoint.
const tailCap = 512

// Log is an audit log open for appending. All methods are safe for
// concurrent use. A nil *Log is safe: Append and Verify no-op.
type Log struct {
	mu       sync.Mutex
	file     *store.AppendFile // nil for a memory-only log
	sealKey  seccrypto.Key
	seq      uint64
	lastHash [32]byte
	tail     []Record // most recent tailCap records, oldest first

	appends  *obs.CounterVec // audit_records_total{op}
	failures *obs.Counter    // audit_append_failures_total
}

// Open opens (creating if needed) the audit log at path, sealed with
// sealKey, and replays the existing chain to find the head. An empty path
// yields a memory-only log (tests, embedded deployments). A broken chain
// — bad seal, bad hash link, non-contiguous sequence — is a loud error.
func Open(path string, sealKey seccrypto.Key) (*Log, error) {
	l := &Log{sealKey: sealKey}
	if path == "" {
		return l, nil
	}
	file, sealed, err := store.OpenAppendFile(path)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}
	seq, head, tail, err := walkChain(sealed, sealKey)
	if err != nil {
		_ = file.Close()
		return nil, err
	}
	l.file = file
	l.seq = seq
	l.lastHash = head
	l.tail = tail
	return l, nil
}

// walkChain validates a sequence of sealed records: every record must
// unseal, link to its predecessor's hash, and carry the next sequence
// number. It returns the head position and the trailing window.
func walkChain(sealed [][]byte, sealKey seccrypto.Key) (seq uint64, head [32]byte, tail []Record, err error) {
	for i, ct := range sealed {
		plain, verr := seccrypto.Validate(ct, sealKey)
		if verr != nil {
			return 0, head, nil, fmt.Errorf("audit: record %d: seal validation failed (tampered or wrong key)", i)
		}
		var rec Record
		if uerr := json.Unmarshal(plain, &rec); uerr != nil {
			return 0, head, nil, fmt.Errorf("audit: record %d: decoding: %w", i, uerr)
		}
		if rec.Seq != seq+1 {
			return 0, head, nil, fmt.Errorf("audit: record %d: sequence %d, want %d (reordered or dropped)", i, rec.Seq, seq+1)
		}
		if !bytes.Equal(rec.PrevHash, head[:]) {
			return 0, head, nil, fmt.Errorf("audit: record %d: hash chain broken (prev_hash mismatch)", i)
		}
		seq = rec.Seq
		head = sha256.Sum256(plain)
		tail = append(tail, rec)
		if len(tail) > tailCap {
			tail = tail[1:]
		}
	}
	return seq, head, tail, nil
}

// Append assigns the record its sequence number, timestamp, and chain
// link, seals it, and writes it out (fsynced). Failures are counted in
// audit_append_failures_total and returned; the in-memory head only
// advances on success, so a failed append never forks the chain. Safe on
// a nil receiver (no-op).
func (l *Log) Append(rec Record) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.Seq = l.seq + 1
	rec.Time = time.Now().UnixNano()
	rec.PrevHash = append([]byte(nil), l.lastHash[:]...)
	plain, err := json.Marshal(rec)
	if err != nil {
		l.failures.Inc()
		return fmt.Errorf("audit: encoding record: %w", err)
	}
	if l.file != nil {
		sealed, err := seccrypto.ProtectWithKey(plain, l.sealKey, nil)
		if err != nil {
			l.failures.Inc()
			return fmt.Errorf("audit: sealing record: %w", err)
		}
		if err := l.file.Append(sealed); err != nil {
			l.failures.Inc()
			return fmt.Errorf("audit: %w", err)
		}
	}
	l.seq = rec.Seq
	l.lastHash = sha256.Sum256(plain)
	l.tail = append(l.tail, rec)
	if len(l.tail) > tailCap {
		l.tail = l.tail[1:]
	}
	l.appends.With(rec.Op).Inc()
	return nil
}

// Len returns the number of records appended to the chain.
func (l *Log) Len() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// HeadHash returns the SHA-256 of the last record's plaintext (all zeros
// for an empty chain).
func (l *Log) HeadHash() [32]byte {
	if l == nil {
		return [32]byte{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastHash
}

// Tail returns a copy of the most recent records, oldest first, at most n
// (n <= 0 means the whole retained window).
func (l *Log) Tail(n int) []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.tail
	if n > 0 && len(t) > n {
		t = t[len(t)-n:]
	}
	return append([]Record(nil), t...)
}

// Verify re-reads the log's file from disk and walks the full chain,
// then checks that the file's head matches the in-memory head. It
// detects interior tampering (seal or hash-link failure), reordering
// (sequence breaks), and truncation (file chain shorter than what was
// appended). Memory-only logs trivially verify. Safe on a nil receiver.
func (l *Log) Verify() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	file := l.file
	seq := l.seq
	head := l.lastHash
	l.mu.Unlock()
	if file == nil {
		return nil
	}
	gotSeq, gotHead, err := VerifyFile(file.Path(), l.sealKey)
	if err != nil {
		return err
	}
	if gotSeq != seq || gotHead != head {
		return fmt.Errorf("audit: file chain ends at record %d, expected %d (truncated or rolled back)", gotSeq, seq)
	}
	return nil
}

// VerifyFile walks the audit chain in the file at path with sealKey and
// returns its length and head hash. Any seal failure, hash-link break, or
// sequence gap is an error naming the offending record.
func VerifyFile(path string, sealKey seccrypto.Key) (uint64, [32]byte, error) {
	sealed, err := store.ReadAppendFile(path)
	if err != nil {
		return 0, [32]byte{}, fmt.Errorf("audit: %w", err)
	}
	seq, head, _, err := walkChain(sealed, sealKey)
	return seq, head, err
}

// Close closes the underlying file. Safe on a nil receiver.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}

// ExposeMetrics registers the log's metrics with an obs registry.
//
// Metric inventory: audit_records_total{op}, audit_append_failures_total,
// audit_chain_length.
func (l *Log) ExposeMetrics(reg *obs.Registry) {
	if l == nil || reg == nil {
		return
	}
	l.mu.Lock()
	l.appends = reg.CounterVec("audit_records_total", "Audit records appended, by operation.", "op")
	l.failures = reg.Counter("audit_append_failures_total", "Audit appends that failed (seal or I/O error).")
	l.mu.Unlock()
	reg.GaugeFunc("audit_chain_length", "Records in the audit hash chain.", nil,
		func() float64 { return float64(l.Len()) })
}

// HTTPHandler serves the /audit endpoint: a JSON view of the chain head
// and the last N records (?n=, default 100, capped at the retained
// window).
func (l *Log) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 100
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		head := l.HeadHash()
		resp := struct {
			Length   uint64   `json:"length"`
			HeadHash string   `json:"head_hash"`
			Records  []Record `json:"records"`
		}{
			Length:   l.Len(),
			HeadHash: hex.EncodeToString(head[:]),
			Records:  l.Tail(n),
		}
		if resp.Records == nil {
			resp.Records = []Record{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
