package attest

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/sgx"
)

func newPlatform(t *testing.T, name string) *Platform {
	t.Helper()
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: name, EPCBytes: 1 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	p, err := NewPlatform(name, m)
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	return p
}

func mkEnclave(t *testing.T, p *Platform, name, code string) *sgx.Enclave {
	t.Helper()
	e, err := p.Machine().CreateEnclave(name, []byte(code), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	return e
}

func TestLocalAttestRoundTrip(t *testing.T) {
	p := newPlatform(t, "host")
	mgr := mkEnclave(t, p, "sl-manager", "manager-code")
	local := mkEnclave(t, p, "sl-local", "local-code")

	r, err := p.CreateReport(mgr, local, []byte("hello"))
	if err != nil {
		t.Fatalf("CreateReport: %v", err)
	}
	if err := p.VerifyReport(r, local); err != nil {
		t.Fatalf("VerifyReport: %v", err)
	}
	if r.Source != mgr.Measurement() || r.Target != local.Measurement() {
		t.Fatal("report identities wrong")
	}
}

func TestLocalAttestChargesCost(t *testing.T) {
	p := newPlatform(t, "host")
	a := mkEnclave(t, p, "a", "code-a")
	b := mkEnclave(t, p, "b", "code-b")
	before := p.Machine().Stats()
	start := p.Machine().Clock().Now()
	if err := p.MutualLocalAttest(a, b); err != nil {
		t.Fatalf("MutualLocalAttest: %v", err)
	}
	delta := p.Machine().Stats().Sub(before)
	if delta.LocalAttests != 2 {
		t.Fatalf("local attest count = %d, want 2 (one per direction)", delta.LocalAttests)
	}
	charged := p.Machine().Clock().Since(start)
	if want := 2 * p.Machine().Model().LocalAttest; charged != want {
		t.Fatalf("charged %d cycles, want %d", charged, want)
	}
}

func TestVerifyReportRejectsTamper(t *testing.T) {
	p := newPlatform(t, "host")
	a := mkEnclave(t, p, "a", "code-a")
	b := mkEnclave(t, p, "b", "code-b")
	r, err := p.CreateReport(a, b, []byte("data"))
	if err != nil {
		t.Fatalf("CreateReport: %v", err)
	}
	r.Data[0] ^= 0xFF
	if err := p.VerifyReport(r, b); !errors.Is(err, ErrBadReport) {
		t.Fatalf("tampered report: got %v, want ErrBadReport", err)
	}
}

func TestVerifyReportRejectsWrongTarget(t *testing.T) {
	p := newPlatform(t, "host")
	a := mkEnclave(t, p, "a", "code-a")
	b := mkEnclave(t, p, "b", "code-b")
	c := mkEnclave(t, p, "c", "code-c")
	r, err := p.CreateReport(a, b, nil)
	if err != nil {
		t.Fatalf("CreateReport: %v", err)
	}
	if err := p.VerifyReport(r, c); !errors.Is(err, ErrBadReport) {
		t.Fatalf("misdirected report: got %v, want ErrBadReport", err)
	}
}

func TestReportDoesNotCrossMachines(t *testing.T) {
	p1 := newPlatform(t, "host1")
	p2 := newPlatform(t, "host2")
	a := mkEnclave(t, p1, "a", "code-a")
	b := mkEnclave(t, p1, "b", "code-b")
	// Same code identity on machine 2, so measurements match — but the
	// machine-local MAC key differs, which is the point of local attestation.
	b2 := mkEnclave(t, p2, "b", "code-b")

	r, err := p1.CreateReport(a, b, nil)
	if err != nil {
		t.Fatalf("CreateReport: %v", err)
	}
	if err := p2.VerifyReport(r, b2); !errors.Is(err, ErrBadReport) {
		t.Fatalf("cross-machine report accepted: %v", err)
	}
}

func TestCreateReportRejectsForeignEnclave(t *testing.T) {
	p1 := newPlatform(t, "host1")
	p2 := newPlatform(t, "host2")
	a := mkEnclave(t, p1, "a", "code-a")
	b := mkEnclave(t, p2, "b", "code-b")
	if _, err := p1.CreateReport(a, b, nil); err == nil {
		t.Fatal("report created for enclave on another platform")
	}
}

func TestRemoteAttestRoundTrip(t *testing.T) {
	p := newPlatform(t, "client")
	e := mkEnclave(t, p, "sl-local", "sl-local-code")
	svc := NewService()
	svc.RegisterPlatform(p)
	svc.TrustMeasurement(e.Measurement())

	q, err := p.CreateQuote(e, []byte("nonce-123"))
	if err != nil {
		t.Fatalf("CreateQuote: %v", err)
	}
	serverMachine, err := sgx.NewMachine(sgx.MachineConfig{Name: "server", EPCBytes: 1 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	start := serverMachine.Clock().Now()
	if err := svc.VerifyQuote(q, serverMachine); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	elapsed := serverMachine.Clock().Elapsed(start, serverMachine.Model())
	if elapsed < 3*time.Second || elapsed > 4*time.Second {
		t.Fatalf("RA latency = %v, want 3-4s per the paper", elapsed)
	}
	if serverMachine.Stats().RemoteAttests != 1 {
		t.Fatal("remote attestation not counted")
	}
}

func TestVerifyQuoteRejections(t *testing.T) {
	p := newPlatform(t, "client")
	e := mkEnclave(t, p, "sl-local", "sl-local-code")
	svc := NewService()

	q, err := p.CreateQuote(e, nil)
	if err != nil {
		t.Fatalf("CreateQuote: %v", err)
	}

	// Unregistered platform.
	if err := svc.VerifyQuote(q, nil); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("unknown platform: got %v", err)
	}

	svc.RegisterPlatform(p)
	// Registered but untrusted measurement.
	if err := svc.VerifyQuote(q, nil); !errors.Is(err, ErrUntrustedMeasurement) {
		t.Fatalf("untrusted measurement: got %v", err)
	}

	svc.TrustMeasurement(e.Measurement())
	if err := svc.VerifyQuote(q, nil); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}

	// Tampered quote.
	bad := q
	bad.Report.Data[5] ^= 1
	if err := svc.VerifyQuote(bad, nil); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("tampered quote: got %v", err)
	}

	// Revocation.
	svc.RevokeMeasurement(e.Measurement())
	if err := svc.VerifyQuote(q, nil); !errors.Is(err, ErrUntrustedMeasurement) {
		t.Fatalf("revoked measurement: got %v", err)
	}
}

func TestQuoteForgeryFails(t *testing.T) {
	p1 := newPlatform(t, "honest")
	p2 := newPlatform(t, "attacker")
	e := mkEnclave(t, p1, "e", "code")
	svc := NewService()
	svc.RegisterPlatform(p1)
	svc.TrustMeasurement(e.Measurement())

	q, err := p1.CreateQuote(e, nil)
	if err != nil {
		t.Fatalf("CreateQuote: %v", err)
	}
	// Attacker claims the quote comes from their registered platform.
	svc.RegisterPlatform(p2)
	forged := q
	forged.Platform = "attacker"
	if err := svc.VerifyQuote(forged, nil); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("forged platform attribution accepted: %v", err)
	}
}

func TestQuoteJSONRoundTrip(t *testing.T) {
	p := newPlatform(t, "client")
	e := mkEnclave(t, p, "sl-local", "sl-local-code")
	q, err := p.CreateQuote(e, []byte("pubkey-hash"))
	if err != nil {
		t.Fatalf("CreateQuote: %v", err)
	}
	b, err := json.Marshal(q)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Quote
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got != q {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, q)
	}
	// The decoded quote must still verify.
	svc := NewService()
	svc.RegisterPlatform(p)
	svc.TrustMeasurement(e.Measurement())
	if err := svc.VerifyQuote(got, nil); err != nil {
		t.Fatalf("round-tripped quote rejected: %v", err)
	}
}

func TestQuoteJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"wrong field type", `{"source":123}`},
		{"bad base64", `{"source":"@@@"}`},
		{"short source", `{"source":"AAAA","target":"` + b64zeros(32) + `","data":"` + b64zeros(64) + `","mac":"` + b64zeros(32) + `","platform":"p","signature":"` + b64zeros(32) + `"}`},
		{"long data", `{"source":"` + b64zeros(32) + `","target":"` + b64zeros(32) + `","data":"` + b64zeros(96) + `","mac":"` + b64zeros(32) + `","platform":"p","signature":"` + b64zeros(32) + `"}`},
		{"missing fields", `{"platform":"p"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var q Quote
			if err := json.Unmarshal([]byte(tc.in), &q); !errors.Is(err, ErrMalformedQuote) {
				t.Fatalf("got %v, want ErrMalformedQuote", err)
			}
		})
	}
}

func b64zeros(n int) string {
	return base64.StdEncoding.EncodeToString(make([]byte, n))
}

func TestProvisionedPlatformCrossProcess(t *testing.T) {
	secret := []byte("shared-provisioning-secret")
	m, err := sgx.NewMachine(sgx.MachineConfig{Name: "daemon", EPCBytes: 1 << 20})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	p, err := NewProvisionedPlatform("daemon-host", m, secret)
	if err != nil {
		t.Fatalf("NewProvisionedPlatform: %v", err)
	}
	e := mkEnclave(t, p, "sl-local", "sl-local-code")
	q, err := p.CreateQuote(e, nil)
	if err != nil {
		t.Fatalf("CreateQuote: %v", err)
	}

	// The verifier never saw the platform object — it only shares the
	// provisioning secret, as a separate daemon process would.
	svc := NewService()
	svc.EnableProvisioning(secret)
	svc.TrustMeasurement(sgx.MeasurementOf([]byte("sl-local-code")))
	if err := svc.VerifyQuote(q, nil); err != nil {
		t.Fatalf("provisioned quote rejected: %v", err)
	}

	// A service with a different secret derives the wrong key.
	other := NewService()
	other.EnableProvisioning([]byte("different-secret"))
	other.TrustMeasurement(e.Measurement())
	if err := other.VerifyQuote(q, nil); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("wrong-secret verification: got %v, want ErrBadQuote", err)
	}

	// Without provisioning the platform is simply unknown.
	plain := NewService()
	plain.TrustMeasurement(e.Measurement())
	if err := plain.VerifyQuote(q, nil); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("unprovisioned verification: got %v, want ErrUnknownPlatform", err)
	}
}

func TestProvisionedPlatformDeterministic(t *testing.T) {
	secret := []byte("s")
	m1, _ := sgx.NewMachine(sgx.MachineConfig{Name: "m1", EPCBytes: 1 << 20})
	m2, _ := sgx.NewMachine(sgx.MachineConfig{Name: "m2", EPCBytes: 1 << 20})
	p1, err := NewProvisionedPlatform("host", m1, secret)
	if err != nil {
		t.Fatalf("NewProvisionedPlatform: %v", err)
	}
	p2, err := NewProvisionedPlatform("host", m2, secret)
	if err != nil {
		t.Fatalf("NewProvisionedPlatform: %v", err)
	}
	// Same name + secret → same quoting identity across "processes".
	e1 := mkEnclave(t, p1, "e", "code")
	q1, err := p1.CreateQuote(e1, nil)
	if err != nil {
		t.Fatalf("CreateQuote: %v", err)
	}
	svc := NewService()
	svc.RegisterPlatform(p2)
	svc.TrustMeasurement(e1.Measurement())
	if err := svc.VerifyQuote(q1, nil); err != nil {
		t.Fatalf("cross-instance provisioned quote rejected: %v", err)
	}
	if _, err := NewProvisionedPlatform("host", m1, nil); err == nil {
		t.Fatal("empty secret accepted")
	}
}

func TestReportDataTruncation(t *testing.T) {
	p := newPlatform(t, "host")
	a := mkEnclave(t, p, "a", "code-a")
	b := mkEnclave(t, p, "b", "code-b")
	long := make([]byte, ReportDataSize+32)
	for i := range long {
		long[i] = byte(i)
	}
	r, err := p.CreateReport(a, b, long)
	if err != nil {
		t.Fatalf("CreateReport: %v", err)
	}
	for i := 0; i < ReportDataSize; i++ {
		if r.Data[i] != byte(i) {
			t.Fatalf("data byte %d = %d, want %d", i, r.Data[i], i)
		}
	}
	if err := p.VerifyReport(r, b); err != nil {
		t.Fatalf("VerifyReport: %v", err)
	}
}

func BenchmarkLocalAttest(b *testing.B) {
	m, err := sgx.NewMachine(sgx.MachineConfig{EPCBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPlatform("bench", m)
	if err != nil {
		b.Fatal(err)
	}
	a, err := m.CreateEnclave("a", []byte("ca"), 0)
	if err != nil {
		b.Fatal(err)
	}
	c, err := m.CreateEnclave("c", []byte("cc"), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MutualLocalAttest(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
