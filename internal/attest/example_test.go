package attest_test

import (
	"fmt"

	"repro/internal/attest"
	"repro/internal/sgx"
)

// Example shows the two attestation protocols back to back: a mutual
// local attestation between two enclaves on one machine (the SL-Manager ⇄
// SL-Local handshake), and a remote attestation of one of them against a
// verification service (the SL-Local ⇄ SL-Remote init).
func Example() {
	machine, _ := sgx.NewMachine(sgx.MachineConfig{Name: "client", EPCBytes: 1 << 20})
	platform, _ := attest.NewPlatform("client", machine)

	manager, _ := machine.CreateEnclave("sl-manager", []byte("manager-code"), 0)
	local, _ := machine.CreateEnclave("sl-local", []byte("local-code"), 0)

	// Local attestation: cheap, machine-scoped.
	err := platform.MutualLocalAttest(manager, local)
	fmt.Println("local attestation:", err == nil)

	// Remote attestation: the service must know the platform and trust
	// the measurement, and one round trip costs seconds.
	service := attest.NewService()
	service.RegisterPlatform(platform)
	service.TrustMeasurement(local.Measurement())
	quote, _ := platform.CreateQuote(local, []byte("init-nonce"))
	err = service.VerifyQuote(quote, machine)
	fmt.Println("remote attestation:", err == nil)
	fmt.Println("RA wall time ≥ 3s:",
		machine.Model().CyclesToDuration(machine.Clock().Now()).Seconds() >= 3)
	// Output:
	// local attestation: true
	// remote attestation: true
	// RA wall time ≥ 3s: true
}
