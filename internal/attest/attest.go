// Package attest implements the two attestation protocols SecureLease
// depends on (Section 2.3 of the paper):
//
//   - Local attestation: two enclaves on the same machine exchange
//     hardware-MACed reports to prove to each other that they are genuine
//     enclaves with expected measurements. In SecureLease this runs between
//     every SL-Manager and SL-Local before a lease is issued.
//
//   - Remote attestation: an enclave produces a quote that a remote party
//     verifies with the help of a trusted verification service (the Intel
//     Attestation Service, IAS). The paper measures 3-4 seconds per remote
//     attestation, which is exactly why SecureLease works so hard to avoid
//     them. SL-Remote remote-attests each SL-Local once at initialization.
//
// The cryptography is simulated with HMACs keyed by per-machine and
// per-platform secrets: only enclaves on the same machine can mint valid
// local reports, and only registered platforms can mint quotes the service
// accepts. The latency of each protocol is charged to the machine's virtual
// clock through the sgx cost model.
package attest

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/sgx"
)

// ReportDataSize is the caller-controlled payload embedded in a report
// (SGX allows 64 bytes).
const ReportDataSize = 64

// Errors returned by verification.
var (
	// ErrBadReport reports a local-attestation report that fails MAC
	// verification: forged, tampered with, or minted on another machine.
	ErrBadReport = errors.New("attest: report verification failed")
	// ErrBadQuote reports a remote-attestation quote that fails
	// verification at the service.
	ErrBadQuote = errors.New("attest: quote verification failed")
	// ErrUnknownPlatform reports a quote from a platform the verification
	// service has never registered.
	ErrUnknownPlatform = errors.New("attest: unknown platform")
	// ErrUntrustedMeasurement reports an enclave whose measurement is not
	// in the verifier's trust set.
	ErrUntrustedMeasurement = errors.New("attest: untrusted measurement")
)

// Report is a local-attestation report: evidence that the source enclave
// runs on the same machine as the target, bound to 64 bytes of caller data.
type Report struct {
	Source sgx.Measurement
	Target sgx.Measurement
	Data   [ReportDataSize]byte
	MAC    [sha256.Size]byte
}

// Quote is a remote-attestation quote: a report countersigned by the
// platform's quoting key, verifiable by the verification service.
type Quote struct {
	Report    Report
	Platform  string
	Signature [sha256.Size]byte
}

// quoteJSON is the transport encoding of a Quote: base64 fields with
// strict sizes, shared by the wire envelope and the ratls certificate
// extension so the two cannot drift.
type quoteJSON struct {
	Source    []byte `json:"source"`
	Target    []byte `json:"target"`
	Data      []byte `json:"data"`
	MAC       []byte `json:"mac"`
	Platform  string `json:"platform"`
	Signature []byte `json:"signature"`
}

// MarshalJSON encodes the quote with base64 fields (encoding/json's
// default []byte handling), avoiding the integer-array form fixed-size
// arrays would otherwise produce.
func (q Quote) MarshalJSON() ([]byte, error) {
	return json.Marshal(quoteJSON{
		Source:    q.Report.Source[:],
		Target:    q.Report.Target[:],
		Data:      q.Report.Data[:],
		MAC:       q.Report.MAC[:],
		Platform:  q.Platform,
		Signature: q.Signature[:],
	})
}

// ErrMalformedQuote reports a quote encoding whose fields have the wrong
// sizes — a tampered or truncated transport frame, rejected before any
// cryptographic verification runs.
var ErrMalformedQuote = errors.New("attest: malformed quote encoding")

// UnmarshalJSON decodes a quote, rejecting any field whose decoded size
// does not match the fixed report layout.
func (q *Quote) UnmarshalJSON(b []byte) error {
	var enc quoteJSON
	if err := json.Unmarshal(b, &enc); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformedQuote, err)
	}
	var out Quote
	if len(enc.Source) != len(out.Report.Source) ||
		len(enc.Target) != len(out.Report.Target) ||
		len(enc.Data) != len(out.Report.Data) ||
		len(enc.MAC) != len(out.Report.MAC) ||
		len(enc.Signature) != len(out.Signature) {
		return fmt.Errorf("%w: field sizes %d/%d/%d/%d/%d", ErrMalformedQuote,
			len(enc.Source), len(enc.Target), len(enc.Data), len(enc.MAC), len(enc.Signature))
	}
	copy(out.Report.Source[:], enc.Source)
	copy(out.Report.Target[:], enc.Target)
	copy(out.Report.Data[:], enc.Data)
	copy(out.Report.MAC[:], enc.MAC)
	copy(out.Signature[:], enc.Signature)
	out.Platform = enc.Platform
	*q = out
	return nil
}

// Platform wraps one machine with the secrets needed to mint reports and
// quotes. Create one Platform per sgx.Machine.
type Platform struct {
	machine  *sgx.Machine
	name     string
	localKey []byte // shared by all enclaves on this machine
	quoteKey []byte // provisioned key known to the verification service
}

// NewPlatform equips a machine for attestation. The platform name must be
// unique among platforms registered with one Service.
func NewPlatform(name string, m *sgx.Machine) (*Platform, error) {
	if m == nil {
		return nil, errors.New("attest: nil machine")
	}
	localKey := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, localKey); err != nil {
		return nil, fmt.Errorf("attest: local key: %w", err)
	}
	quoteKey := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, quoteKey); err != nil {
		return nil, fmt.Errorf("attest: quote key: %w", err)
	}
	return &Platform{machine: m, name: name, localKey: localKey, quoteKey: quoteKey}, nil
}

// NewProvisionedPlatform equips a machine for attestation with keys
// derived deterministically from a shared provisioning secret. It stands
// in for Intel key provisioning: a verification service holding the same
// secret (via Service.EnableProvisioning) can verify this platform's
// quotes without an in-process RegisterPlatform call, which is what lets
// two daemon processes attest each other.
func NewProvisionedPlatform(name string, m *sgx.Machine, secret []byte) (*Platform, error) {
	if m == nil {
		return nil, errors.New("attest: nil machine")
	}
	if len(secret) == 0 {
		return nil, errors.New("attest: empty provisioning secret")
	}
	return &Platform{
		machine:  m,
		name:     name,
		localKey: deriveKey(secret, "local|"+name),
		quoteKey: deriveKey(secret, "quote|"+name),
	}, nil
}

// deriveKey derives a labeled 32-byte key from the provisioning secret.
func deriveKey(secret []byte, label string) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

// Name returns the platform's registered name.
func (p *Platform) Name() string { return p.name }

// Machine returns the underlying simulated machine.
func (p *Platform) Machine() *sgx.Machine { return p.machine }

// CreateReport mints a local-attestation report from source targeted at
// target, embedding data (truncated/zero-padded to ReportDataSize). Both
// enclaves must live on this platform's machine. The local-attestation cost
// is charged once per report-and-verify round trip at verification time.
func (p *Platform) CreateReport(source, target *sgx.Enclave, data []byte) (Report, error) {
	if source == nil || target == nil {
		return Report{}, errors.New("attest: nil enclave")
	}
	if source.Machine() != p.machine || target.Machine() != p.machine {
		return Report{}, errors.New("attest: enclave not on this platform")
	}
	r := Report{Source: source.Measurement(), Target: target.Measurement()}
	copy(r.Data[:], data)
	r.MAC = p.reportMAC(r)
	return r, nil
}

// VerifyReport checks a report at the given verifying enclave: the MAC must
// be valid for this machine and the report must target the verifier. On
// success the round trip cost is charged to the machine clock.
func (p *Platform) VerifyReport(r Report, verifier *sgx.Enclave) error {
	if verifier == nil {
		return errors.New("attest: nil verifier")
	}
	if verifier.Machine() != p.machine {
		return errors.New("attest: verifier not on this platform")
	}
	want := p.reportMAC(r)
	if !hmac.Equal(want[:], r.MAC[:]) {
		return ErrBadReport
	}
	if r.Target != verifier.Measurement() {
		return fmt.Errorf("%w: report targets a different enclave", ErrBadReport)
	}
	p.machine.ChargeLocalAttestation()
	return nil
}

// MutualLocalAttest runs the full bidirectional local attestation between
// two enclaves (SL-Manager ⇄ SL-Local): each side produces a report for
// the other and verifies the peer's. It returns the first failure.
func (p *Platform) MutualLocalAttest(a, b *sgx.Enclave) error {
	ra, err := p.CreateReport(a, b, nil)
	if err != nil {
		return fmt.Errorf("attest: creating report a→b: %w", err)
	}
	if err := p.VerifyReport(ra, b); err != nil {
		return fmt.Errorf("attest: verifying report a→b: %w", err)
	}
	rb, err := p.CreateReport(b, a, nil)
	if err != nil {
		return fmt.Errorf("attest: creating report b→a: %w", err)
	}
	if err := p.VerifyReport(rb, a); err != nil {
		return fmt.Errorf("attest: verifying report b→a: %w", err)
	}
	return nil
}

// CreateQuote produces a remote-attestation quote for the enclave with the
// given report data.
func (p *Platform) CreateQuote(e *sgx.Enclave, data []byte) (Quote, error) {
	if e == nil {
		return Quote{}, errors.New("attest: nil enclave")
	}
	if e.Machine() != p.machine {
		return Quote{}, errors.New("attest: enclave not on this platform")
	}
	r := Report{Source: e.Measurement(), Target: e.Measurement()}
	copy(r.Data[:], data)
	r.MAC = p.reportMAC(r)
	q := Quote{Report: r, Platform: p.name}
	q.Signature = quoteSig(p.quoteKey, q.Report)
	return q, nil
}

func (p *Platform) reportMAC(r Report) [sha256.Size]byte {
	mac := hmac.New(sha256.New, p.localKey)
	mac.Write(r.Source[:])
	mac.Write(r.Target[:])
	mac.Write(r.Data[:])
	var out [sha256.Size]byte
	copy(out[:], mac.Sum(nil))
	return out
}

func quoteSig(key []byte, r Report) [sha256.Size]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(r.Source[:])
	mac.Write(r.Target[:])
	mac.Write(r.Data[:])
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(r.Data)))
	mac.Write(n[:])
	var out [sha256.Size]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Service is the simulated verification service (IAS stand-in): it knows
// the quoting keys of registered platforms and a set of trusted enclave
// measurements, and it charges the remote-attestation latency to the
// *verifying* side's machine when used through VerifyQuote.
//
// Service is safe for concurrent use.
type Service struct {
	mu        sync.RWMutex
	platforms map[string][]byte // name → quoting key
	trusted   map[sgx.Measurement]struct{}
	provision []byte // non-nil: derive unknown platforms' quote keys
}

// NewService returns an empty verification service.
func NewService() *Service {
	return &Service{
		platforms: make(map[string][]byte),
		trusted:   make(map[sgx.Measurement]struct{}),
	}
}

// RegisterPlatform enrolls a platform (key provisioning in real SGX).
func (s *Service) RegisterPlatform(p *Platform) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := make([]byte, len(p.quoteKey))
	copy(key, p.quoteKey)
	s.platforms[p.name] = key
}

// EnableProvisioning gives the service the shared provisioning secret:
// quotes from platforms it has never seen verify against keys derived
// from the secret (mirroring NewProvisionedPlatform), so daemons in
// separate processes need only agree on the secret, not exchange keys.
func (s *Service) EnableProvisioning(secret []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.provision = append([]byte(nil), secret...)
}

// TrustMeasurement adds an enclave measurement to the trust set.
func (s *Service) TrustMeasurement(m sgx.Measurement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trusted[m] = struct{}{}
}

// RevokeMeasurement removes a measurement from the trust set.
func (s *Service) RevokeMeasurement(m sgx.Measurement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.trusted, m)
}

// VerifyQuote validates a quote: the platform must be registered, the
// signature valid, and the measurement trusted. chargeTo, if non-nil, is
// the machine whose clock pays the remote-attestation latency (normally the
// verifier's; in SecureLease, SL-Remote's side of the init flow — but the
// paper charges it to the end-to-end lease renewal path, so callers pick).
func (s *Service) VerifyQuote(q Quote, chargeTo *sgx.Machine) error {
	s.mu.RLock()
	key, ok := s.platforms[q.Platform]
	if !ok && s.provision != nil {
		key, ok = deriveKey(s.provision, "quote|"+q.Platform), true
	}
	_, trusted := s.trusted[q.Report.Source]
	s.mu.RUnlock()

	if chargeTo != nil {
		chargeTo.ChargeRemoteAttestation()
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPlatform, q.Platform)
	}
	want := quoteSig(key, q.Report)
	if !hmac.Equal(want[:], q.Signature[:]) {
		return ErrBadQuote
	}
	if !trusted {
		return ErrUntrustedMeasurement
	}
	return nil
}
