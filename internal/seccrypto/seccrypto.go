// Package seccrypto implements the cryptographic primitives SecureLease
// relies on: the Protect/Validate pair used to commit lease-tree nodes to
// untrusted memory (Algorithms 2 and 3 in the paper), authenticated
// encryption built on AES-GCM, and the hash functions compared in the
// paper's Table 1 (MurmurHash3 and SHA-256).
//
// All keys are 128-bit AES keys wrapped in the Key type. Every Protect call
// draws a fresh random key, which is what defeats replay: a stale ciphertext
// can no longer be validated once its parent re-commits with a new key.
package seccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// KeySize is the size in bytes of the symmetric keys used throughout
// SecureLease (AES-128).
const KeySize = 16

// Key is a symmetric encryption key. The zero value is not a valid key;
// obtain keys from NewKey or KeyFromBytes.
type Key struct {
	b [KeySize]byte
}

// ErrInvalidKey reports a malformed key encoding.
var ErrInvalidKey = errors.New("seccrypto: invalid key")

// ErrValidationFailed reports that a protected payload failed authentication:
// it was tampered with, replayed under a stale key, or truncated.
var ErrValidationFailed = errors.New("seccrypto: validation failed")

// NewKey generates a fresh random key from the given entropy source.
// If src is nil, crypto/rand is used.
func NewKey(src io.Reader) (Key, error) {
	if src == nil {
		src = rand.Reader
	}
	var k Key
	if _, err := io.ReadFull(src, k.b[:]); err != nil {
		return Key{}, fmt.Errorf("seccrypto: generating key: %w", err)
	}
	return k, nil
}

// KeyFromBytes builds a key from an existing byte slice. The slice must be
// exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	if len(b) != KeySize {
		return Key{}, fmt.Errorf("%w: got %d bytes, want %d", ErrInvalidKey, len(b), KeySize)
	}
	var k Key
	copy(k.b[:], b)
	return k, nil
}

// Bytes returns a copy of the raw key material.
func (k Key) Bytes() []byte {
	out := make([]byte, KeySize)
	copy(out, k.b[:])
	return out
}

// IsZero reports whether the key is the (invalid) zero key.
func (k Key) IsZero() bool {
	return k.b == [KeySize]byte{}
}

// Protected is the result of Protect: ciphertext of payload‖hash under a
// fresh random key, together with that key. The caller stores the
// ciphertext in untrusted memory and keeps the key inside the enclave
// (in the parent tree node, per Section 5.5 of the paper).
type Protected struct {
	Ciphertext []byte
	Key        Key
}

// Protect implements Algorithm 2 of the paper. It hashes the payload,
// generates a fresh random key, and encrypts payload‖hash with
// authenticated encryption. The returned key must be retained in trusted
// memory; the ciphertext may live anywhere.
//
// If src is nil, crypto/rand supplies the key and nonce entropy.
func Protect(payload []byte, src io.Reader) (Protected, error) {
	key, err := NewKey(src)
	if err != nil {
		return Protected{}, err
	}
	ct, err := ProtectWithKey(payload, key, src)
	if err != nil {
		return Protected{}, err
	}
	return Protected{Ciphertext: ct, Key: key}, nil
}

// ProtectWithKey is Protect with a caller-supplied key. It is used by the
// sealing machinery, where the key is derived from the enclave identity
// rather than freshly generated.
func ProtectWithKey(payload []byte, key Key, src io.Reader) ([]byte, error) {
	if src == nil {
		src = rand.Reader
	}
	sum := sha256.Sum256(payload)
	plain := make([]byte, 0, len(payload)+sha256.Size)
	plain = append(plain, payload...)
	plain = append(plain, sum[:]...)

	block, err := aes.NewCipher(key.b[:])
	if err != nil {
		return nil, fmt.Errorf("seccrypto: cipher init: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: gcm init: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(src, nonce); err != nil {
		return nil, fmt.Errorf("seccrypto: generating nonce: %w", err)
	}
	out := make([]byte, 0, len(nonce)+len(plain)+gcm.Overhead())
	out = append(out, nonce...)
	out = gcm.Seal(out, nonce, plain, nil)
	return out, nil
}

// Validate implements Algorithm 3 of the paper. It decrypts the ciphertext
// with the supplied key, recomputes the hash of the recovered payload, and
// compares it with the stored hash. On any mismatch — wrong key (replay of
// an old ciphertext), bit flips, truncation — it returns
// ErrValidationFailed.
func Validate(ciphertext []byte, key Key) ([]byte, error) {
	block, err := aes.NewCipher(key.b[:])
	if err != nil {
		return nil, fmt.Errorf("seccrypto: cipher init: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: gcm init: %w", err)
	}
	if len(ciphertext) < gcm.NonceSize() {
		return nil, ErrValidationFailed
	}
	nonce, ct := ciphertext[:gcm.NonceSize()], ciphertext[gcm.NonceSize():]
	plain, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, ErrValidationFailed
	}
	if len(plain) < sha256.Size {
		return nil, ErrValidationFailed
	}
	payload, sum := plain[:len(plain)-sha256.Size], plain[len(plain)-sha256.Size:]
	want := sha256.Sum256(payload)
	if [sha256.Size]byte(sum) != want {
		return nil, ErrValidationFailed
	}
	return payload, nil
}

// SHA256Sum64 returns the first 8 bytes of the SHA-256 digest of data as a
// uint64. It backs the SHA-256 hash-table variant measured in Table 1 of
// the paper.
func SHA256Sum64(data []byte) uint64 {
	sum := sha256.Sum256(data)
	return binary.LittleEndian.Uint64(sum[:8])
}

// Murmur64 computes the 64-bit finalized MurmurHash3 (x64 variant, first
// half of the 128-bit digest) of data with the given seed. This is the
// "MurmurHash" contender from Table 1 of the paper (the hash behind C++
// unordered_map in common implementations).
func Murmur64(data []byte, seed uint64) uint64 {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	h1 := seed
	h2 := seed
	n := len(data)
	nblocks := n / 16

	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	return h1
}

func rotl64(x uint64, r uint) uint64 {
	return (x << r) | (x >> (64 - r))
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
