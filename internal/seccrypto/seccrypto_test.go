package seccrypto

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewKeyDistinct(t *testing.T) {
	a, err := NewKey(nil)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	b, err := NewKey(nil)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	if a == b {
		t.Fatal("two fresh keys are identical")
	}
	if a.IsZero() || b.IsZero() {
		t.Fatal("fresh key is zero")
	}
}

func TestKeyFromBytes(t *testing.T) {
	raw := bytes.Repeat([]byte{0xAB}, KeySize)
	k, err := KeyFromBytes(raw)
	if err != nil {
		t.Fatalf("KeyFromBytes: %v", err)
	}
	if !bytes.Equal(k.Bytes(), raw) {
		t.Fatal("round trip mismatch")
	}
	if _, err := KeyFromBytes(raw[:KeySize-1]); !errors.Is(err, ErrInvalidKey) {
		t.Fatalf("short key: got %v, want ErrInvalidKey", err)
	}
	if _, err := KeyFromBytes(append(raw, 0)); !errors.Is(err, ErrInvalidKey) {
		t.Fatalf("long key: got %v, want ErrInvalidKey", err)
	}
}

func TestKeyBytesIsCopy(t *testing.T) {
	k, err := NewKey(nil)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	b := k.Bytes()
	b[0] ^= 0xFF
	if bytes.Equal(b, k.Bytes()) {
		t.Fatal("Bytes returned an aliased slice")
	}
}

func TestProtectValidateRoundTrip(t *testing.T) {
	payload := []byte("lease node payload 0123456789")
	p, err := Protect(payload, nil)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	got, err := Validate(p.Ciphertext, p.Key)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
}

func TestProtectEmptyPayload(t *testing.T) {
	p, err := Protect(nil, nil)
	if err != nil {
		t.Fatalf("Protect(nil): %v", err)
	}
	got, err := Validate(p.Ciphertext, p.Key)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty payload, got %d bytes", len(got))
	}
}

func TestValidateDetectsTamper(t *testing.T) {
	payload := []byte("sensitive lease data")
	p, err := Protect(payload, nil)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	for i := 0; i < len(p.Ciphertext); i += 7 {
		ct := append([]byte(nil), p.Ciphertext...)
		ct[i] ^= 0x01
		if _, err := Validate(ct, p.Key); !errors.Is(err, ErrValidationFailed) {
			t.Fatalf("flip at byte %d: got %v, want ErrValidationFailed", i, err)
		}
	}
}

func TestValidateDetectsWrongKey(t *testing.T) {
	payload := []byte("payload under key A")
	p, err := Protect(payload, nil)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	other, err := NewKey(nil)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	if _, err := Validate(p.Ciphertext, other); !errors.Is(err, ErrValidationFailed) {
		t.Fatalf("wrong key: got %v, want ErrValidationFailed", err)
	}
}

func TestValidateDetectsReplay(t *testing.T) {
	// Simulates the paper's replay scenario (Section 6.2): protect the
	// same logical node twice; the old ciphertext must not validate under
	// the new key.
	payload := []byte("lease count = 10")
	oldP, err := Protect(payload, nil)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	newP, err := Protect([]byte("lease count = 9"), nil)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if _, err := Validate(oldP.Ciphertext, newP.Key); !errors.Is(err, ErrValidationFailed) {
		t.Fatalf("replayed ciphertext validated: %v", err)
	}
}

func TestValidateTruncated(t *testing.T) {
	p, err := Protect([]byte("x"), nil)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	for _, n := range []int{0, 1, 5, 11, len(p.Ciphertext) - 1} {
		if n > len(p.Ciphertext) {
			continue
		}
		if _, err := Validate(p.Ciphertext[:n], p.Key); !errors.Is(err, ErrValidationFailed) {
			t.Fatalf("truncated to %d bytes: got %v, want ErrValidationFailed", n, err)
		}
	}
}

func TestProtectWithKeyDeterministicKey(t *testing.T) {
	key, err := NewKey(nil)
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	payload := []byte("sealed state")
	ct, err := ProtectWithKey(payload, key, nil)
	if err != nil {
		t.Fatalf("ProtectWithKey: %v", err)
	}
	got, err := Validate(ct, key)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestProtectValidateProperty(t *testing.T) {
	// Property: for any payload, Protect followed by Validate is identity,
	// and single-bit corruption anywhere in the ciphertext is detected.
	rng := rand.New(rand.NewSource(42))
	f := func(payload []byte) bool {
		p, err := Protect(payload, nil)
		if err != nil {
			return false
		}
		got, err := Validate(p.Ciphertext, p.Key)
		if err != nil || !bytes.Equal(got, payload) {
			return false
		}
		ct := append([]byte(nil), p.Ciphertext...)
		i := rng.Intn(len(ct))
		ct[i] ^= 1 << uint(rng.Intn(8))
		_, err = Validate(ct, p.Key)
		return errors.Is(err, ErrValidationFailed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMurmur64KnownDistinct(t *testing.T) {
	// MurmurHash must be deterministic, seed-sensitive, and input-sensitive.
	h1 := Murmur64([]byte("lease-42"), 0)
	h2 := Murmur64([]byte("lease-42"), 0)
	if h1 != h2 {
		t.Fatal("Murmur64 not deterministic")
	}
	if Murmur64([]byte("lease-42"), 1) == h1 {
		t.Fatal("Murmur64 ignores seed")
	}
	if Murmur64([]byte("lease-43"), 0) == h1 {
		t.Fatal("Murmur64 ignores input")
	}
}

func TestMurmur64AllTailLengths(t *testing.T) {
	// Exercise every tail-switch arm (lengths 0..16 mod 16).
	seen := make(map[uint64]int, 33)
	buf := make([]byte, 33)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	for n := 0; n <= 32; n++ {
		h := Murmur64(buf[:n], 99)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

func TestSHA256Sum64(t *testing.T) {
	a := SHA256Sum64([]byte("alpha"))
	b := SHA256Sum64([]byte("alpha"))
	c := SHA256Sum64([]byte("beta"))
	if a != b {
		t.Fatal("SHA256Sum64 not deterministic")
	}
	if a == c {
		t.Fatal("SHA256Sum64 collision on trivially distinct inputs")
	}
}

func TestHashDistributionProperty(t *testing.T) {
	// Property: hashing distinct 8-byte inputs produces (with overwhelming
	// probability) distinct 64-bit values for both hash functions.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		var ab, bb [8]byte
		for i := 0; i < 8; i++ {
			ab[i] = byte(a >> (8 * uint(i)))
			bb[i] = byte(b >> (8 * uint(i)))
		}
		return Murmur64(ab[:], 0) != Murmur64(bb[:], 0) &&
			SHA256Sum64(ab[:]) != SHA256Sum64(bb[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProtect(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 312) // one lease record
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Protect(payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 312)
	p, err := Protect(payload, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Validate(p.Ciphertext, p.Key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMurmur64(b *testing.B) {
	data := bytes.Repeat([]byte{0xC3}, 32)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Murmur64(data, 0)
	}
}

func BenchmarkSHA256Sum64(b *testing.B) {
	data := bytes.Repeat([]byte{0xC3}, 32)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		SHA256Sum64(data)
	}
}

func TestMurmur64ReferenceVectors(t *testing.T) {
	// First 64-bit word of the canonical MurmurHash3 x64 128-bit digest,
	// seed 0 — pins our implementation to the reference algorithm.
	vectors := []struct {
		input string
		want  uint64
	}{
		{"", 0x0000000000000000},
		{"hello", 0xcbd8a7b341bd9b02},
		{"The quick brown fox jumps over the lazy dog", 0xe34bbc7bbc071b6c},
	}
	for _, v := range vectors {
		if got := Murmur64([]byte(v.input), 0); got != v.want {
			t.Errorf("Murmur64(%q) = %016x, want %016x", v.input, got, v.want)
		}
	}
}
