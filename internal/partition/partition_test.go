package partition

import (
	"testing"

	"repro/internal/callgraph"
	"repro/internal/sgx"
	"repro/internal/trace"
)

// buildApp constructs a synthetic application shaped like the paper's
// workloads: a small AM cluster, a protected-region core with a key
// function, a large memory-heavy data module touching sensitive data, and
// a utility module. Returns the graph and a dynamic trace.
func buildApp(t testing.TB) (*callgraph.Graph, *trace.Trace) {
	t.Helper()
	r := trace.NewRecorder()
	decl := func(n callgraph.Node) {
		if err := r.Declare(n); err != nil {
			t.Fatal(err)
		}
	}
	// AM cluster.
	decl(callgraph.Node{Name: "am.check", CodeBytes: 2000, MemoryBytes: 64 << 10, Module: "am", AuthModule: true, TouchesSensitive: true})
	decl(callgraph.Node{Name: "am.verify", CodeBytes: 1500, MemoryBytes: 32 << 10, Module: "am", AuthModule: true, TouchesSensitive: true})
	// Core cluster with the key function.
	decl(callgraph.Node{Name: "core.parse", CodeBytes: 8000, MemoryBytes: 2 << 20, Module: "core", KeyFunction: true})
	decl(callgraph.Node{Name: "core.plan", CodeBytes: 6000, MemoryBytes: 1 << 20, Module: "core"})
	// Data module: big memory, touches sensitive data (Glamdring taints it).
	decl(callgraph.Node{Name: "data.load", CodeBytes: 20000, MemoryBytes: 120 << 20, Module: "data", TouchesSensitive: true})
	decl(callgraph.Node{Name: "data.scan", CodeBytes: 15000, MemoryBytes: 60 << 20, Module: "data", TouchesSensitive: true})
	// Utility module.
	decl(callgraph.Node{Name: "util.log", CodeBytes: 1000, MemoryBytes: 16 << 10, Module: "util"})
	decl(callgraph.Node{Name: "main", CodeBytes: 500, MemoryBytes: 16 << 10, Module: "init"})

	// Dense intra-cluster, sparse inter-cluster call structure.
	r.EnterN("main", "am.check", 1)
	r.EnterN("am.check", "am.verify", 200)
	r.EnterN("main", "core.parse", 100)
	r.EnterN("core.parse", "core.plan", 5000)
	r.EnterN("core.plan", "core.parse", 3000)
	r.EnterN("core.plan", "data.load", 10)
	r.EnterN("data.load", "data.scan", 8000)
	r.EnterN("data.scan", "data.load", 6000)
	r.EnterN("data.scan", "util.log", 50)
	r.EnterN("core.parse", "util.log", 30)

	// Dynamic work: core does most of the interesting work; data moves
	// lots of bytes.
	r.Work("main", 1000)
	r.Work("am.check", 500)
	r.Work("am.verify", 300)
	r.Work("core.parse", 400_000)
	r.Work("core.plan", 300_000)
	r.Work("data.load", 150_000)
	r.Work("data.scan", 100_000)
	r.Work("util.log", 5_000)

	g, err := r.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g, r.Trace()
}

func TestSecureLeaseMigratesAMAndKeyCluster(t *testing.T) {
	g, tr := buildApp(t)
	p, err := SecureLease(g, tr, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatalf("SecureLease: %v", err)
	}
	for _, f := range []string{"am.check", "am.verify"} {
		if !p.Migrated[f] {
			t.Fatalf("AM function %q not migrated", f)
		}
	}
	// The dependency: at least one key function inside.
	hasKey := false
	for f := range p.Migrated {
		if g.Node(f) != nil && g.Node(f).KeyFunction {
			hasKey = true
		}
	}
	if !hasKey {
		t.Fatal("no key function migrated — CFB dependency missing")
	}
	// The memory-heavy data module must stay out (it would blow the EPC).
	if p.Migrated["data.load"] {
		t.Fatal("EPC-busting data module migrated")
	}
}

func TestSecureLeaseRespectsMemThreshold(t *testing.T) {
	g, tr := buildApp(t)
	p, err := SecureLease(g, tr, Options{K: 4, Seed: 1, MemThreshold: 8 << 20})
	if err != nil {
		t.Fatalf("SecureLease: %v", err)
	}
	var mem int64
	for f := range p.Migrated {
		mem += g.Node(f).MemoryBytes
	}
	if mem > 8<<20 {
		t.Fatalf("migrated memory %d exceeds threshold", mem)
	}
}

func TestSecureLeaseSafetyNetTinyThreshold(t *testing.T) {
	// Thresholds so small no cluster fits: the safety net must still
	// migrate one key function.
	g, tr := buildApp(t)
	p, err := SecureLease(g, tr, Options{K: 4, Seed: 1, MemThreshold: 1})
	if err != nil {
		t.Fatalf("SecureLease: %v", err)
	}
	hasKey := false
	for f := range p.Migrated {
		if g.Node(f).KeyFunction {
			hasKey = true
		}
	}
	if !hasKey {
		t.Fatal("safety net failed: no key function migrated")
	}
}

func TestSecureLeaseErrorsWithoutKeyFunctions(t *testing.T) {
	r := trace.NewRecorder()
	if err := r.Declare(callgraph.Node{Name: "f", CodeBytes: 1, MemoryBytes: 1, Module: "m"}); err != nil {
		t.Fatal(err)
	}
	g, err := r.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SecureLease(g, r.Trace(), Options{K: 1, Seed: 1, MemThreshold: 1}); err == nil {
		t.Fatal("graph without key functions accepted")
	}
}

func TestSecureLeaseInputValidation(t *testing.T) {
	if _, err := SecureLease(nil, &trace.Trace{}, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _ := buildApp(t)
	if _, err := SecureLease(g, nil, Options{}); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestGlamdringTaintsSensitiveAndNeighbors(t *testing.T) {
	g, _ := buildApp(t)
	p, err := Glamdring(g, 1)
	if err != nil {
		t.Fatalf("Glamdring: %v", err)
	}
	for _, f := range []string{"am.check", "am.verify", "data.load", "data.scan"} {
		if !p.Migrated[f] {
			t.Fatalf("sensitive function %q not migrated", f)
		}
	}
	// One taint step spreads to heavy callees of tainted functions.
	if !p.Migrated["util.log"] {
		t.Fatal("taint did not propagate to util.log")
	}
}

func TestSecureLeaseSmallerThanGlamdring(t *testing.T) {
	// The paper's Table 5 headline: SecureLease migrates far less static
	// code (avg -67.8%) at comparable dynamic coverage, with zero EPC
	// faults while Glamdring faults heavily.
	g, tr := buildApp(t)
	sl, err := SecureLease(g, tr, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatalf("SecureLease: %v", err)
	}
	gl, err := Glamdring(g, 1)
	if err != nil {
		t.Fatalf("Glamdring: %v", err)
	}
	est := NewEstimator(sgx.DefaultCostModel())
	slCost := est.Evaluate(g, tr, sl.Migrated)
	glCost := est.Evaluate(g, tr, gl.Migrated)
	if slCost.StaticBytes >= glCost.StaticBytes {
		t.Fatalf("SecureLease static %d should be < Glamdring %d", slCost.StaticBytes, glCost.StaticBytes)
	}
	if slCost.EPCFaults != 0 {
		t.Fatalf("SecureLease EPC faults = %d, want 0", slCost.EPCFaults)
	}
	if glCost.EPCFaults == 0 {
		t.Fatal("Glamdring shows no EPC faults despite 180MB footprint")
	}
	if slCost.PredictedOverhead >= glCost.PredictedOverhead {
		t.Fatalf("SecureLease overhead %v should be < Glamdring %v",
			slCost.PredictedOverhead, glCost.PredictedOverhead)
	}
}

func TestFLaaSPicksHighOutDegree(t *testing.T) {
	g, _ := buildApp(t)
	p, err := FLaaS(g, 2)
	if err != nil {
		t.Fatalf("FLaaS: %v", err)
	}
	// Out-degrees: core.parse=2(plan,log), core.plan=2, data.scan=2,
	// main=2, am.check=1, data.load=1. Top-2 by (degree, name):
	// core.parse and core.plan tie at 2 with earliest names.
	if !p.Migrated["core.parse"] {
		t.Fatalf("top out-degree function missing: %v", p.MigratedList())
	}
	// AM always included.
	if !p.Migrated["am.check"] || !p.Migrated["am.verify"] {
		t.Fatal("AM missing from F-LaaS partition")
	}
}

func TestFullEnclaveAndAMOnly(t *testing.T) {
	g, _ := buildApp(t)
	full, err := FullEnclave(g)
	if err != nil {
		t.Fatalf("FullEnclave: %v", err)
	}
	if len(full.MigratedList()) != g.Len() {
		t.Fatalf("full enclave migrated %d of %d", len(full.MigratedList()), g.Len())
	}
	am, err := AMOnly(g)
	if err != nil {
		t.Fatalf("AMOnly: %v", err)
	}
	if len(am.MigratedList()) != 2 {
		t.Fatalf("AM-only migrated %v", am.MigratedList())
	}
}

func TestAMOnlyRequiresAM(t *testing.T) {
	r := trace.NewRecorder()
	if err := r.Declare(callgraph.Node{Name: "f", CodeBytes: 1, MemoryBytes: 1}); err != nil {
		t.Fatal(err)
	}
	g, err := r.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AMOnly(g); err == nil {
		t.Fatal("graph without AM accepted")
	}
}

func TestEstimatorHandComputed(t *testing.T) {
	r := trace.NewRecorder()
	for _, n := range []callgraph.Node{
		{Name: "u", CodeBytes: 100, MemoryBytes: 4096},
		{Name: "t", CodeBytes: 300, MemoryBytes: 8192},
	} {
		if err := r.Declare(n); err != nil {
			t.Fatal(err)
		}
	}
	r.EnterN("u", "t", 10) // 10 ecalls
	r.EnterN("t", "u", 4)  // 4 ocalls
	r.Work("u", 1000)
	r.Work("t", 3000)
	g, err := r.Graph()
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Trace()
	model := sgx.DefaultCostModel()
	est := NewEstimator(model)
	c := est.Evaluate(g, tr, map[string]bool{"t": true})

	if c.ECalls != 10 || c.OCalls != 4 {
		t.Fatalf("crossings = %d/%d", c.ECalls, c.OCalls)
	}
	if c.StaticBytes != 300 {
		t.Fatalf("static = %d", c.StaticBytes)
	}
	if c.StaticFraction != 0.75 {
		t.Fatalf("static fraction = %v", c.StaticFraction)
	}
	if c.DynamicCoverage != 0.75 {
		t.Fatalf("dynamic coverage = %v", c.DynamicCoverage)
	}
	if c.EPCBytes != 8192 || c.EPCFaults != 0 {
		t.Fatalf("epc = %d bytes, %d faults", c.EPCBytes, c.EPCFaults)
	}
	wantCycles := 10*model.ECall + 4*model.OCall
	if c.PredictedCycles != wantCycles {
		t.Fatalf("cycles = %d, want %d", c.PredictedCycles, wantCycles)
	}
	wantOverhead := float64(wantCycles) / float64(4000*100)
	if c.PredictedOverhead != wantOverhead {
		t.Fatalf("overhead = %v, want %v", c.PredictedOverhead, wantOverhead)
	}
}

func TestEstimatorFaultsOnEPCOverflow(t *testing.T) {
	r := trace.NewRecorder()
	if err := r.Declare(callgraph.Node{Name: "big", CodeBytes: 100, MemoryBytes: 200 << 20}); err != nil {
		t.Fatal(err)
	}
	r.Work("big", 1_000_000)
	g, err := r.Graph()
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(sgx.DefaultCostModel())
	c := est.Evaluate(g, r.Trace(), map[string]bool{"big": true})
	if c.EPCFaults == 0 {
		t.Fatal("200MB enclave shows no EPC faults")
	}
	// Raising the budget above the footprint clears the faults — the
	// scalable-SGX scenario.
	est.SetEPCBudget(512 << 30)
	c = est.Evaluate(g, r.Trace(), map[string]bool{"big": true})
	if c.EPCFaults != 0 {
		t.Fatalf("faults under 512GB EPC = %d", c.EPCFaults)
	}
}

func TestMigratedListSorted(t *testing.T) {
	p := &Partition{Migrated: map[string]bool{"z": true, "a": true, "m": false}}
	got := p.MigratedList()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("list = %v", got)
	}
}

func BenchmarkSecureLeasePartition(b *testing.B) {
	g, tr := buildApp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SecureLease(g, tr, Options{K: 4, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
