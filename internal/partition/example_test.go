package partition_test

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/sgx"
	"repro/internal/workloads"
)

// ExampleSecureLease partitions the BFS workload: the authentication
// module plus the traversal core migrate; the 190 MB graph loader stays
// untrusted, so the enclave fits the EPC with zero faults.
func ExampleSecureLease() {
	spec, _ := workloads.Get("bfs")
	prof, _ := spec.Run(1)

	p, _ := partition.SecureLease(prof.Graph, prof.Trace, partition.Options{Seed: 7})
	est := partition.NewEstimator(sgx.DefaultCostModel())
	cost := est.Evaluate(prof.Graph, prof.Trace, p.Migrated)

	fmt.Println("key function inside:", p.Migrated["bfs.update"])
	fmt.Println("data loader outside:", !p.Migrated["bfs.load_graph"])
	fmt.Println("EPC faults:", cost.EPCFaults)
	// Output:
	// key function inside: true
	// data loader outside: true
	// EPC faults: 0
}

// ExampleGlamdring shows the data-annotation baseline dragging the
// sensitive bulk into the enclave and overflowing the EPC.
func ExampleGlamdring() {
	spec, _ := workloads.Get("bfs")
	prof, _ := spec.Run(1)

	p, _ := partition.Glamdring(prof.Graph, 1)
	est := partition.NewEstimator(sgx.DefaultCostModel())
	cost := est.Evaluate(prof.Graph, prof.Trace, p.Migrated)

	fmt.Println("data loader inside:", p.Migrated["bfs.load_graph"])
	fmt.Println("overflows the EPC:", cost.EPCFaults > 0)
	// Output:
	// data loader inside: true
	// overflows the EPC: true
}
