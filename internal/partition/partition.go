// Package partition implements SecureLease's dependency-based application
// partitioning (Section 4.2 of the paper) and the baselines it is evaluated
// against:
//
//   - SecureLease: k-means-cluster the call graph, then migrate whole
//     clusters — the authentication module plus the smallest clusters
//     containing key functions — subject to a memory threshold m_t (≤ EPC)
//     and an overhead threshold r_t. Whole-cluster migration minimizes
//     boundary crossings because intra-cluster calls dominate.
//   - Glamdring (Lind et al.): migrate every function that touches
//     developer-annotated sensitive data (taint propagation over the call
//     graph).
//   - F-LaaS (Kumar et al.): migrate the functions with the highest
//     out-degree.
//   - FullEnclave / AMOnly: the whole application, or only the
//     authentication module.
//
// The package also provides the cost estimator that turns a partition plus
// a dynamic trace into the paper's Table 5 metrics: static and dynamic
// coverage, boundary crossings, EPC residency and faults, and a predicted
// slowdown.
package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/callgraph"
	"repro/internal/kmeans"
	"repro/internal/sgx"
	"repro/internal/trace"
)

// Partition is the result of a partitioning algorithm: the functions to
// run inside the enclave.
type Partition struct {
	// Scheme names the algorithm that produced the partition.
	Scheme string
	// Migrated is the set of enclave-resident functions.
	Migrated map[string]bool
	// Clusters, for cluster-based schemes, maps each function to its
	// cluster label (diagnostics and Figure 7 rendering).
	Clusters map[string]int
}

// MigratedList returns the migrated functions sorted by name.
func (p *Partition) MigratedList() []string {
	out := make([]string, 0, len(p.Migrated))
	for f, in := range p.Migrated {
		if in {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// Options tunes the SecureLease partitioner.
type Options struct {
	// K is the number of k-means clusters; 0 derives it from the module
	// count heuristic (√(n/2), min 2).
	K int
	// MemThreshold is m_t: the maximum total memory footprint of migrated
	// functions. 0 defaults to the EPC size (92 MB).
	MemThreshold int64
	// OverheadThreshold is r_t: the maximum acceptable predicted slowdown
	// (e.g. 0.5 = 50% over vanilla). 0 defaults to 0.5.
	OverheadThreshold float64
	// Seed drives k-means seeding.
	Seed int64
	// Model prices boundary crossings and faults; zero value uses the
	// default SGX cost model.
	Model sgx.CostModel

	// DisableClusterMerge turns off the chatty-cluster coarsening pass
	// (ablation: shows the boundary-crossing storms k-means splits cause).
	DisableClusterMerge bool
	// DisableTrim turns off data-structure trimming, so oversized
	// clusters are rejected whole (ablation: shows the safety-net
	// fallback and its cost).
	DisableTrim bool
}

func (o Options) withDefaults(g *callgraph.Graph) Options {
	if o.K <= 0 {
		o.K = approxClusterCount(g.Len())
	}
	if o.MemThreshold <= 0 {
		o.MemThreshold = sgx.DefaultEPC
	}
	if o.OverheadThreshold <= 0 {
		o.OverheadThreshold = 0.5
	}
	if o.Model == (sgx.CostModel{}) {
		o.Model = sgx.DefaultCostModel()
	}
	return o
}

func approxClusterCount(n int) int {
	k := 2
	for k*k*2 < n {
		k++
	}
	return k
}

// SecureLease computes the paper's dependency-based partition.
//
// Steps (Section 4.2.1): cluster the CFG with k-means; the authentication
// module always migrates; then clusters are sorted by memory footprint
// (ascending) and added while the total stays under m_t and the estimated
// overhead under r_t — with the constraint that at least one cluster
// containing a key function migrates, because that dependency is the whole
// point. Common data stays untrusted (the estimator charges OCALLs for
// trusted→untrusted calls accordingly).
func SecureLease(g *callgraph.Graph, tr *trace.Trace, opts Options) (*Partition, error) {
	if g == nil || g.Len() == 0 {
		return nil, errors.New("partition: empty graph")
	}
	if tr == nil {
		return nil, errors.New("partition: nil trace")
	}
	opts = opts.withDefaults(g)

	labels, err := kmeans.ClusterGraph(g, opts.K, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, fmt.Errorf("partition: clustering: %w", err)
	}

	// Group functions by cluster, then coarsen: clusters joined by call
	// traffic comparable to their own internal traffic are really one
	// submodule (the paper's intra-cluster-dominance observation) and
	// must migrate together, or the boundary crossings between them
	// would dominate.
	clusters := make(map[int][]string)
	for _, name := range g.Names() {
		c := labels[name]
		clusters[c] = append(clusters[c], name)
	}
	if !opts.DisableClusterMerge {
		clusters = mergeChattyClusters(g, clusters, labels)
	}

	type clusterInfo struct {
		id      int
		fns     []string
		memory  int64
		hasKey  bool
		hasAuth bool
	}
	infos := make([]clusterInfo, 0, len(clusters))
	for id, fns := range clusters {
		sort.Strings(fns)
		ci := clusterInfo{id: id, fns: fns, memory: g.TotalMemoryBytes(fns)}
		for _, f := range fns {
			n := g.Node(f)
			if n.KeyFunction {
				ci.hasKey = true
			}
			if n.AuthModule {
				ci.hasAuth = true
			}
		}
		infos = append(infos, ci)
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].memory != infos[j].memory {
			return infos[i].memory < infos[j].memory
		}
		return infos[i].id < infos[j].id
	})

	migrated := make(map[string]bool)
	var usedMem int64

	// The AM always migrates — it is the part the lease logic lives in.
	for _, name := range g.AuthFunctions() {
		migrated[name] = true
	}
	usedMem = g.TotalMemoryBytes(g.AuthFunctions())

	est := NewEstimator(opts.Model)
	keyCovered := false
	// Greedy pass: smallest clusters first, considering only clusters
	// that contain key functions; stop at the thresholds. Clusters that
	// merely contain the AM contribute nothing beyond the AM functions
	// already migrated above.
	for _, ci := range infos {
		if !ci.hasKey {
			continue
		}
		// Tentatively add and check both thresholds.
		var clusterMem int64
		for _, f := range ci.fns {
			if !migrated[f] {
				clusterMem += g.Node(f).MemoryBytes
			}
		}
		// Candidate member set; if the cluster busts the memory threshold,
		// trim its heaviest non-key, non-AM members — the functions that
		// own the big common data structures — which the paper keeps in
		// the untrusted region anyway (Section 4.2.1).
		members := append([]string(nil), ci.fns...)
		if usedMem+clusterMem > opts.MemThreshold {
			if opts.DisableTrim {
				continue
			}
			members, clusterMem = trimToBudget(g, members, opts.MemThreshold-usedMem)
			if members == nil {
				continue
			}
		}
		trial := make(map[string]bool, len(migrated)+len(members))
		for f := range migrated {
			trial[f] = true
		}
		for _, f := range members {
			trial[f] = true
		}
		cost := est.Evaluate(g, tr, trial)
		if cost.PredictedOverhead > opts.OverheadThreshold {
			continue
		}
		for _, f := range members {
			if !migrated[f] {
				migrated[f] = true
				usedMem += g.Node(f).MemoryBytes
			}
		}
		keyCovered = true
	}

	// Safety net: if no key-function cluster fit (tiny thresholds), migrate
	// the single cheapest key function so the dependency exists — the
	// paper's security requirement dominates the performance thresholds.
	if !keyCovered {
		var cheapest string
		var cheapestMem int64 = 1 << 62
		for _, f := range g.KeyFunctions() {
			if m := g.Node(f).MemoryBytes; m < cheapestMem {
				cheapest, cheapestMem = f, m
			}
		}
		if cheapest == "" {
			return nil, errors.New("partition: graph has no key functions to protect")
		}
		migrated[cheapest] = true
	}

	return &Partition{Scheme: "securelease", Migrated: migrated, Clusters: labels}, nil
}

// Glamdring computes the data-annotation baseline: every function marked
// as touching sensitive data migrates, plus taint propagated one step
// along data flow — callees that the tainted functions call heavily are
// assumed to receive sensitive data and migrate too (Lind et al. propagate
// via dataflow analysis; call weight is our observable proxy).
func Glamdring(g *callgraph.Graph, taintDepth int) (*Partition, error) {
	if g == nil || g.Len() == 0 {
		return nil, errors.New("partition: empty graph")
	}
	if taintDepth < 0 {
		taintDepth = 1
	}
	migrated := make(map[string]bool)
	frontier := make([]string, 0, g.Len())
	for _, name := range g.Names() {
		n := g.Node(name)
		if n.TouchesSensitive || n.AuthModule {
			migrated[name] = true
			frontier = append(frontier, name)
		}
	}
	for depth := 0; depth < taintDepth; depth++ {
		var next []string
		for _, f := range frontier {
			// Sensitive data flows both down (arguments) and up (returns),
			// so the taint spreads along undirected call edges.
			for neighbor := range g.Neighbors(f) {
				if !migrated[neighbor] {
					migrated[neighbor] = true
					next = append(next, neighbor)
				}
			}
		}
		sort.Strings(next)
		frontier = next
	}
	return &Partition{Scheme: "glamdring", Migrated: migrated}, nil
}

// FLaaS computes the out-degree baseline: the topN functions with the most
// distinct callees migrate (plus the AM). Kumar et al. do not bound EPC
// usage or boundary crossings, which is why this partitioning collapses on
// real hardware (the 2000× slowdowns reported in the paper).
func FLaaS(g *callgraph.Graph, topN int) (*Partition, error) {
	if g == nil || g.Len() == 0 {
		return nil, errors.New("partition: empty graph")
	}
	if topN <= 0 {
		topN = 3
	}
	type od struct {
		name   string
		degree int
	}
	degs := make([]od, 0, g.Len())
	for _, name := range g.Names() {
		degs = append(degs, od{name, g.OutDegree(name)})
	}
	sort.SliceStable(degs, func(i, j int) bool {
		if degs[i].degree != degs[j].degree {
			return degs[i].degree > degs[j].degree
		}
		return degs[i].name < degs[j].name
	})
	migrated := make(map[string]bool)
	for _, name := range g.AuthFunctions() {
		migrated[name] = true
	}
	for i := 0; i < topN && i < len(degs); i++ {
		migrated[degs[i].name] = true
	}
	return &Partition{Scheme: "f-laas", Migrated: migrated}, nil
}

// FullEnclave migrates the entire application.
func FullEnclave(g *callgraph.Graph) (*Partition, error) {
	if g == nil || g.Len() == 0 {
		return nil, errors.New("partition: empty graph")
	}
	migrated := make(map[string]bool, g.Len())
	for _, name := range g.Names() {
		migrated[name] = true
	}
	return &Partition{Scheme: "full-enclave", Migrated: migrated}, nil
}

// AMOnly migrates only the authentication module — the strawman a CFB
// attack walks straight past (Section 2.1.1).
func AMOnly(g *callgraph.Graph) (*Partition, error) {
	if g == nil || g.Len() == 0 {
		return nil, errors.New("partition: empty graph")
	}
	migrated := make(map[string]bool)
	for _, name := range g.AuthFunctions() {
		migrated[name] = true
	}
	if len(migrated) == 0 {
		return nil, errors.New("partition: graph has no authentication module")
	}
	return &Partition{Scheme: "am-only", Migrated: migrated}, nil
}

// mergeChattyClusters coarsens a clustering by uniting clusters whose
// inter-cluster call traffic rivals their own internal traffic. Such pairs
// are one logical submodule that k-means happened to split; migrating only
// half of one would create exactly the boundary-crossing storm the paper's
// whole-cluster rule exists to avoid.
func mergeChattyClusters(g *callgraph.Graph, clusters map[int][]string, labels map[string]int) map[int][]string {
	const ratio = 0.5 // merge when inter ≥ ratio × min(intra)

	// Intra-cluster weight per cluster and inter-cluster weights per pair.
	intra := make(map[int]int64, len(clusters))
	inter := make(map[[2]int]int64)
	for _, e := range g.Edges() {
		a, b := labels[e.From], labels[e.To]
		if a == b {
			intra[a] += e.Count
			continue
		}
		if a > b {
			a, b = b, a
		}
		inter[[2]int{a, b}] += e.Count
	}

	// Union-find over cluster IDs.
	parent := make(map[int]int, len(clusters))
	for id := range clusters {
		parent[id] = id
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Deterministic iteration order over pairs.
	pairs := make([][2]int, 0, len(inter))
	for p := range inter {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, p := range pairs {
		w := inter[p]
		ia, ib := intra[p[0]], intra[p[1]]
		if ia < 1 {
			ia = 1
		}
		if ib < 1 {
			ib = 1
		}
		minIntra := ia
		if ib < minIntra {
			minIntra = ib
		}
		if float64(w) >= ratio*float64(minIntra) {
			ra, rb := find(p[0]), find(p[1])
			if ra != rb {
				parent[rb] = ra
			}
		}
	}

	merged := make(map[int][]string, len(clusters))
	for id, fns := range clusters {
		root := find(id)
		merged[root] = append(merged[root], fns...)
	}
	return merged
}

// trimToBudget drops non-key, non-AM members of a candidate cluster until
// its memory footprint fits the remaining budget — the dropped functions
// own the common data structures that stay untrusted (Section 4.2.1).
// Members are dropped in order of least call coupling to the rest of the
// cluster (ties broken by largest memory), so the functions evicted to the
// untrusted side are the ones whose calls across the boundary are rare —
// dropping a chatty member would just trade memory for ECALLs.
// It returns nil if even the key/AM members alone do not fit.
func trimToBudget(g *callgraph.Graph, members []string, budget int64) ([]string, int64) {
	inCluster := make(map[string]bool, len(members))
	for _, f := range members {
		inCluster[f] = true
	}
	type member struct {
		name     string
		mem      int64
		coupling int64
		keep     bool
	}
	ms := make([]member, 0, len(members))
	var total int64
	for _, f := range members {
		n := g.Node(f)
		var coupling int64
		for neighbor, w := range g.Neighbors(f) {
			if inCluster[neighbor] {
				coupling += w
			}
		}
		ms = append(ms, member{
			name:     f,
			mem:      n.MemoryBytes,
			coupling: coupling,
			keep:     n.KeyFunction || n.AuthModule,
		})
		total += n.MemoryBytes
	}
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].coupling != ms[j].coupling {
			return ms[i].coupling < ms[j].coupling
		}
		return ms[i].mem > ms[j].mem
	})
	kept := make([]string, 0, len(ms))
	for _, m := range ms {
		if total > budget && !m.keep {
			total -= m.mem
			continue
		}
		kept = append(kept, m.name)
	}
	if total > budget {
		return nil, 0
	}
	sort.Strings(kept)
	return kept, total
}
