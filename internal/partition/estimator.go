package partition

import (
	"repro/internal/callgraph"
	"repro/internal/sgx"
	"repro/internal/trace"
)

// Cost is the estimator's assessment of one partition against one dynamic
// trace — the quantities Table 5 of the paper reports per workload.
type Cost struct {
	// StaticBytes is the code migrated into the enclave ("static
	// coverage" in the paper; smaller is better for SecureLease).
	StaticBytes int64
	// StaticFraction is StaticBytes over the application total.
	StaticFraction float64
	// DynamicCoverage is the fraction of dynamic work executed inside the
	// enclave (higher = more of the execution is CFB-protected).
	DynamicCoverage float64
	// ECalls and OCalls are boundary crossings observed in the trace.
	ECalls, OCalls int64
	// EPCBytes is the enclave's resident-memory requirement.
	EPCBytes int64
	// EPCFaults estimates page faults caused by exceeding the EPC.
	EPCFaults int64
	// PredictedOverhead is the estimated slowdown over vanilla execution
	// (0.42 = 42% slower), from pricing crossings and faults against the
	// trace's total work.
	PredictedOverhead float64
	// PredictedCycles is the absolute cycle cost of the SGX events.
	PredictedCycles int64
}

// Estimator prices partitions under an SGX cost model.
type Estimator struct {
	model sgx.CostModel
	// epcBudget is the usable EPC; exceeding it causes faults.
	epcBudget int64
	// workCyclesPerUnit converts trace work units into baseline cycles.
	workCyclesPerUnit int64
	// faultsPerPagePerReuse scales fault pressure: each trace work unit
	// touching memory beyond the EPC causes proportional faulting.
	faultReuseFactor float64
}

// NewEstimator builds an estimator with the paper's EPC budget (92 MB)
// and a calibration of one work unit = 100 cycles.
func NewEstimator(model sgx.CostModel) *Estimator {
	if model == (sgx.CostModel{}) {
		model = sgx.DefaultCostModel()
	}
	return &Estimator{
		model:             model,
		epcBudget:         sgx.DefaultEPC,
		workCyclesPerUnit: 100,
		faultReuseFactor:  0.01,
	}
}

// SetEPCBudget overrides the usable EPC size (for what-if analyses such as
// the scalable-SGX discussion in Section 7.5).
func (e *Estimator) SetEPCBudget(bytes int64) {
	if bytes > 0 {
		e.epcBudget = bytes
	}
}

// Evaluate prices a partition against a dynamic trace.
//
// The model mirrors the paper's observed cost structure:
//
//   - every untrusted→trusted dynamic call is an ECALL (~17k cycles), every
//     trusted→untrusted call an OCALL;
//   - the enclave's memory need is the sum of migrated functions'
//     footprints; the portion beyond the EPC budget faults at a rate
//     proportional to the dynamic work executed inside the enclave over
//     the overflowing pages (each fault ~12k cycles plus a page load);
//   - vanilla execution time is the trace's total work in cycles, so
//     overhead = SGX event cycles / vanilla cycles.
func (e *Estimator) Evaluate(g *callgraph.Graph, tr *trace.Trace, migrated map[string]bool) Cost {
	var c Cost
	names := make([]string, 0, len(migrated))
	for f, in := range migrated {
		if in {
			names = append(names, f)
		}
	}
	c.StaticBytes = g.TotalCodeBytes(names)
	if total := g.TotalCodeBytes(nil); total > 0 {
		c.StaticFraction = float64(c.StaticBytes) / float64(total)
	}
	c.DynamicCoverage = tr.DynamicCoverage(migrated)
	c.ECalls, c.OCalls = tr.CrossingCalls(migrated)
	c.EPCBytes = g.TotalMemoryBytes(names)

	// EPC overflow → faults. The working set beyond the EPC thrashes: the
	// fraction of enclave work touching overflow pages times the reuse
	// factor gives the fault count.
	if c.EPCBytes > e.epcBudget {
		overflowPages := (c.EPCBytes - e.epcBudget + sgx.PageSize - 1) / sgx.PageSize
		enclaveWork := tr.WorkIn(migrated)
		overflowFrac := float64(c.EPCBytes-e.epcBudget) / float64(c.EPCBytes)
		c.EPCFaults = int64(float64(enclaveWork) * overflowFrac * e.faultReuseFactor)
		if c.EPCFaults < overflowPages {
			c.EPCFaults = overflowPages // at least one fault per overflow page
		}
	}

	c.PredictedCycles = c.ECalls*e.model.ECall +
		c.OCalls*e.model.OCall +
		c.EPCFaults*(e.model.EPCFault+e.model.PageLoad)

	vanilla := tr.TotalWork() * e.workCyclesPerUnit
	if vanilla > 0 {
		c.PredictedOverhead = float64(c.PredictedCycles) / float64(vanilla)
	}
	return c
}
