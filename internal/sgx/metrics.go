package sgx

import "repro/internal/obs"

// ExposeMetrics registers this machine's SGX driver counters with an obs
// registry as scrape-time metrics, labeled by machine name. The hot paths
// keep writing their existing atomics; the registry reads them only when
// an exposition is requested, so instrumentation adds no per-event cost.
//
// Metric inventory (all labeled {machine=<name>}):
//
//	sgx_ecalls_total, sgx_ocalls_total        enclave transitions
//	sgx_epc_faults_total                      paging faults
//	sgx_page_allocs_total, sgx_page_evicts_total, sgx_page_loads_total
//	sgx_local_attests_total, sgx_remote_attests_total
//	sgx_seal_ops_total
//	sgx_cycles_total                          virtual clock position
//	sgx_epc_resident_pages, sgx_epc_capacity_pages
func (m *Machine) ExposeMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lbl := map[string]string{"machine": m.name}
	counter := func(name, help string, fn func() int64) {
		reg.CounterFunc(name, help, lbl, func() float64 { return float64(fn()) })
	}
	counter("sgx_ecalls_total", "Enclave entries (ECALLs).", m.stats.ecalls.Load)
	counter("sgx_ocalls_total", "Enclave exits (OCALLs).", m.stats.ocalls.Load)
	counter("sgx_epc_faults_total", "EPC paging faults.", m.stats.epcFaults.Load)
	counter("sgx_page_allocs_total", "EPC pages allocated.", m.stats.pageAllocs.Load)
	counter("sgx_page_evicts_total", "EPC pages evicted to untrusted memory.", m.stats.pageEvicts.Load)
	counter("sgx_page_loads_total", "EPC pages loaded back after eviction.", m.stats.pageLoads.Load)
	counter("sgx_local_attests_total", "Local attestations performed.", m.stats.localAttests.Load)
	counter("sgx_remote_attests_total", "Remote attestations performed.", m.stats.remoteAttests.Load)
	counter("sgx_seal_ops_total", "Seal/unseal operations.", m.stats.sealOps.Load)
	counter("sgx_cycles_total", "Virtual cycle clock position.", m.clock.Now)
	reg.GaugeFunc("sgx_epc_resident_pages", "Pages currently resident in the EPC.", lbl,
		func() float64 { return float64(m.EPCResidentPages()) })
	reg.GaugeFunc("sgx_epc_capacity_pages", "EPC capacity in pages.", lbl,
		func() float64 { return float64(m.EPCCapacityPages()) })
}
