package sgx

import (
	"sync/atomic"
	"time"
)

// Clock is a deterministic virtual cycle counter shared by every component
// of a simulated machine. All SGX costs are charged by advancing this clock;
// experiments read elapsed virtual time from it instead of the wall clock,
// which makes results reproducible and lets a multi-second remote
// attestation complete instantly in tests.
//
// Clock is safe for concurrent use. The zero value is a clock at cycle 0.
type Clock struct {
	cycles atomic.Int64
}

// Advance adds n cycles to the clock. Negative n is ignored.
func (c *Clock) Advance(n int64) {
	if n > 0 {
		c.cycles.Add(n)
	}
}

// Now returns the current cycle count.
func (c *Clock) Now() int64 {
	return c.cycles.Load()
}

// Since returns the cycles elapsed since the given start reading.
func (c *Clock) Since(start int64) int64 {
	return c.cycles.Load() - start
}

// Elapsed converts the cycles elapsed since start into wall time under the
// given cost model.
func (c *Clock) Elapsed(start int64, model CostModel) time.Duration {
	return model.CyclesToDuration(c.Since(start))
}
