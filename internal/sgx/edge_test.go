package sgx

import (
	"testing"
)

func TestEnclaveAccessors(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("named", []byte("identity"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	if e.Name() != "named" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Machine() != m {
		t.Fatal("Machine accessor wrong")
	}
	if e.ID() == 0 {
		t.Fatal("zero enclave ID")
	}
	if (e.Measurement() == Measurement{}) {
		t.Fatal("zero measurement")
	}
	// Same code → same measurement; different code → different.
	e2, err := m.CreateEnclave("twin", []byte("identity"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	if e.Measurement() != e2.Measurement() {
		t.Fatal("same code produced different measurements")
	}
	e3, err := m.CreateEnclave("other", []byte("other-identity"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	if e.Measurement() == e3.Measurement() {
		t.Fatal("different code produced the same measurement")
	}
}

func TestCreateEnclaveNegativePages(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	if _, err := m.CreateEnclave("bad", []byte("c"), -1); err == nil {
		t.Fatal("negative initial pages accepted")
	}
}

func TestMachineEnclavesListing(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	a, err := m.CreateEnclave("a", []byte("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CreateEnclave("b", []byte("b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Enclaves()); got != 2 {
		t.Fatalf("Enclaves = %d", got)
	}
	if m.Enclave(a.ID()) != a || m.Enclave(b.ID()) != b {
		t.Fatal("Enclave lookup wrong")
	}
	a.Destroy()
	if got := len(m.Enclaves()); got != 1 {
		t.Fatalf("Enclaves after destroy = %d", got)
	}
}

func TestPinUnknownAndEvictedPages(t *testing.T) {
	m := newTestMachine(t, 4*PageSize)
	e, err := m.CreateEnclave("e", []byte("c"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Pin(PageID(999)); err == nil {
		t.Fatal("pin of unknown page accepted")
	}
	if err := e.Unpin(PageID(999)); err == nil {
		t.Fatal("unpin of unknown page accepted")
	}
	ids, err := e.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	// Evict then pin: the pin must fault the page back in and hold it.
	if err := e.Evict(ids[0]); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if err := e.Pin(ids[0]); err != nil {
		t.Fatalf("Pin of evicted page: %v", err)
	}
	faulted, err := e.Touch(ids[0])
	if err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if faulted {
		t.Fatal("pinned page was not resident")
	}
	// Unpin of an unpinned page is a no-op.
	if err := e.Unpin(ids[1]); err != nil {
		t.Fatalf("Unpin unpinned: %v", err)
	}
}

func TestMachineNameAndModelAccessors(t *testing.T) {
	m, err := NewMachine(MachineConfig{Name: "box", EPCBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "box" {
		t.Fatalf("Name = %q", m.Name())
	}
	if m.Model().CPUHz != DefaultCostModel().CPUHz {
		t.Fatal("default model not applied")
	}
	if m.Clock() == nil {
		t.Fatal("nil clock")
	}
}

func TestNewMachineRejectsBadModel(t *testing.T) {
	bad := DefaultCostModel()
	bad.ECall = -5
	if _, err := NewMachine(MachineConfig{EPCBytes: 1 << 20, Model: bad}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestChargeComputeAdvancesClock(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	before := m.Clock().Now()
	m.ChargeCompute(12345)
	if got := m.Clock().Since(before); got != 12345 {
		t.Fatalf("charged %d", got)
	}
}

func TestFreePagesOnUnknownIsSafe(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("e", []byte("c"), 0)
	if err != nil {
		t.Fatal(err)
	}
	e.FreePages([]PageID{12345}) // must not panic
	ids, err := e.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	e.FreePages(ids)
	e.FreePages(ids) // double free is a no-op
}

func TestDestroyedEnclaveRemainingOps(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("e", []byte("c"), 2)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := e.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	e.Destroy()
	if err := e.OCall(nil); err == nil {
		t.Fatal("OCall after destroy accepted")
	}
	if _, err := e.Touch(ids[0]); err == nil {
		t.Fatal("Touch after destroy accepted")
	}
	if err := e.Pin(ids[0]); err == nil {
		t.Fatal("Pin after destroy accepted")
	}
	if err := e.Unpin(ids[0]); err == nil {
		t.Fatal("Unpin after destroy accepted")
	}
	if err := e.Evict(ids[0]); err == nil {
		t.Fatal("Evict after destroy accepted")
	}
	if _, err := e.Unseal(nil); err == nil {
		t.Fatal("Unseal after destroy accepted")
	}
	e.FreePages(ids) // no-op, no panic
}
