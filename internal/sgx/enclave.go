package sgx

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/seccrypto"
)

// EnclaveID identifies an enclave within one machine.
type EnclaveID uint32

// Measurement is the enclave's identity (MRENCLAVE analogue): a digest of
// the code loaded into it. Attestation protocols compare measurements.
type Measurement [32]byte

// MeasurementOf computes the measurement an enclave built from
// codeIdentity would carry, without creating one. Verifiers use it to
// populate trust lists for enclaves running in other processes.
func MeasurementOf(codeIdentity []byte) Measurement {
	return sha256.Sum256(codeIdentity)
}

// ErrEnclaveDestroyed reports an operation on a torn-down enclave.
var ErrEnclaveDestroyed = errors.New("sgx: enclave destroyed")

// Enclave is a simulated SGX enclave: a named, measured sandbox whose
// memory lives in the machine's EPC and whose entry/exit transitions are
// charged against the virtual clock. Enclave methods are safe for
// concurrent use.
type Enclave struct {
	id      EnclaveID
	name    string
	measure Measurement
	machine *Machine
	sealKey seccrypto.Key

	destroyed atomic.Bool

	mu    sync.Mutex
	pages []PageID

	stats Stats // per-enclave counters (machine keeps global ones too)
}

// ID returns the enclave's machine-local identifier.
func (e *Enclave) ID() EnclaveID { return e.id }

// Name returns the human-readable name the enclave was created with.
func (e *Enclave) Name() string { return e.name }

// Measurement returns the enclave's identity digest.
func (e *Enclave) Measurement() Measurement { return e.measure }

// Machine returns the machine hosting this enclave.
func (e *Enclave) Machine() *Machine { return e.machine }

// Stats returns a snapshot of this enclave's own transition counters.
func (e *Enclave) Stats() StatsSnapshot { return e.stats.Snapshot() }

// ECall enters the enclave, charges the transition cost, and runs fn as
// trusted code. The returned error is fn's error; transition accounting
// happens regardless.
func (e *Enclave) ECall(fn func() error) error {
	if e.destroyed.Load() {
		return ErrEnclaveDestroyed
	}
	e.machine.clock.Advance(e.machine.model.ECall)
	e.machine.stats.ecalls.Add(1)
	e.stats.ecalls.Add(1)
	if fn == nil {
		return nil
	}
	return fn()
}

// OCall exits the enclave to run fn as untrusted code, charging the exit
// transition cost.
func (e *Enclave) OCall(fn func() error) error {
	if e.destroyed.Load() {
		return ErrEnclaveDestroyed
	}
	e.machine.clock.Advance(e.machine.model.OCall)
	e.machine.stats.ocalls.Add(1)
	e.stats.ocalls.Add(1)
	if fn == nil {
		return nil
	}
	return fn()
}

// AllocPages adds n 4 KB pages of enclave memory, possibly evicting cold
// EPC pages belonging to any enclave on the machine. It returns the page
// handles for later Touch/Evict/Free calls.
func (e *Enclave) AllocPages(n int) ([]PageID, error) {
	if e.destroyed.Load() {
		return nil, ErrEnclaveDestroyed
	}
	ids, err := e.machine.pager.alloc(e.id, n)
	if err != nil {
		return ids, fmt.Errorf("sgx: enclave %q alloc: %w", e.name, err)
	}
	e.mu.Lock()
	e.pages = append(e.pages, ids...)
	e.mu.Unlock()
	e.stats.pageAllocs.Add(int64(n))
	return ids, nil
}

// AllocBytes allocates enough pages to hold size bytes and returns them.
func (e *Enclave) AllocBytes(size int64) ([]PageID, error) {
	if size <= 0 {
		return nil, nil
	}
	pages := int((size + PageSize - 1) / PageSize)
	return e.AllocPages(pages)
}

// Touch records an access to an enclave page. If the page had been evicted
// from the EPC, the access faults and the fault + load-back costs are
// charged. It reports whether a fault occurred.
func (e *Enclave) Touch(id PageID) (bool, error) {
	if e.destroyed.Load() {
		return false, ErrEnclaveDestroyed
	}
	faulted, err := e.machine.pager.touch(id)
	if faulted {
		e.stats.epcFaults.Add(1)
		e.stats.pageLoads.Add(1)
	}
	return faulted, err
}

// Pin marks a page unevictable (root-of-trust pages).
func (e *Enclave) Pin(id PageID) error {
	if e.destroyed.Load() {
		return ErrEnclaveDestroyed
	}
	return e.machine.pager.pin(id)
}

// Unpin makes a pinned page evictable again.
func (e *Enclave) Unpin(id PageID) error {
	if e.destroyed.Load() {
		return ErrEnclaveDestroyed
	}
	return e.machine.pager.unpin(id)
}

// Evict explicitly pushes a page out of the EPC (after the owning component
// has committed its contents, per Section 5.5 of the paper).
func (e *Enclave) Evict(id PageID) error {
	if e.destroyed.Load() {
		return ErrEnclaveDestroyed
	}
	if err := e.machine.pager.evict(id); err != nil {
		return err
	}
	e.stats.pageEvicts.Add(1)
	return nil
}

// FreePages releases pages permanently.
func (e *Enclave) FreePages(ids []PageID) {
	if e.destroyed.Load() {
		return
	}
	e.machine.pager.free(ids)
	e.mu.Lock()
	e.pages = removePages(e.pages, ids)
	e.mu.Unlock()
}

// ResidentPages returns how many of this enclave's pages are currently in
// the EPC.
func (e *Enclave) ResidentPages() int {
	return e.machine.pager.residentOf(e.id)
}

// Seal encrypts data under a key bound to the enclave's measurement, so
// only a future instance of the same enclave can recover it. The cost of
// one seal operation is charged per page of data.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	if e.destroyed.Load() {
		return nil, ErrEnclaveDestroyed
	}
	e.chargeSeal(len(data))
	ct, err := seccrypto.ProtectWithKey(data, e.sealKey, nil)
	if err != nil {
		return nil, fmt.Errorf("sgx: seal: %w", err)
	}
	return ct, nil
}

// Unseal decrypts data previously sealed by an enclave with the same
// measurement. Tampered or foreign blobs fail validation.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	if e.destroyed.Load() {
		return nil, ErrEnclaveDestroyed
	}
	e.chargeSeal(len(blob))
	data, err := seccrypto.Validate(blob, e.sealKey)
	if err != nil {
		return nil, fmt.Errorf("sgx: unseal: %w", err)
	}
	return data, nil
}

func (e *Enclave) chargeSeal(n int) {
	pages := int64((n + PageSize - 1) / PageSize)
	if pages == 0 {
		pages = 1
	}
	e.machine.clock.Advance(pages * e.machine.model.SealCycles)
	e.machine.stats.sealOps.Add(1)
	e.stats.sealOps.Add(1)
}

// Destroy tears the enclave down, releasing all its EPC pages. Further
// operations fail with ErrEnclaveDestroyed.
func (e *Enclave) Destroy() {
	if !e.destroyed.CompareAndSwap(false, true) {
		return
	}
	e.mu.Lock()
	pages := e.pages
	e.pages = nil
	e.mu.Unlock()
	e.machine.pager.free(pages)
	e.machine.removeEnclave(e.id)
}

func removePages(have, drop []PageID) []PageID {
	if len(drop) == 0 {
		return have
	}
	dropSet := make(map[PageID]struct{}, len(drop))
	for _, id := range drop {
		dropSet[id] = struct{}{}
	}
	out := have[:0]
	for _, id := range have {
		if _, gone := dropSet[id]; !gone {
			out = append(out, id)
		}
	}
	return out
}
