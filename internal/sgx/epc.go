package sgx

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// PageID identifies one 4 KB page owned by an enclave. Page IDs are unique
// per machine and never reused.
type PageID uint64

// pageState tracks where a page currently lives.
type pageState uint8

const (
	pageResident pageState = iota + 1
	pageEvicted
)

// page is the pager's bookkeeping record for one enclave page.
type page struct {
	id      PageID
	owner   EnclaveID
	state   pageState
	pinned  bool
	lruElem *list.Element // non-nil iff resident and unpinned
}

// ErrEPCExhausted reports that the EPC cannot hold another page even after
// evicting every unpinned resident page.
var ErrEPCExhausted = errors.New("sgx: EPC exhausted (all resident pages pinned)")

// errUnknownPage reports a page ID the pager has never issued or has freed.
var errUnknownPage = errors.New("sgx: unknown page")

// epcPager models the enclave page cache: a fixed pool of resident slots
// with transparent LRU eviction to untrusted memory. Evictions, load-backs,
// faults, and allocations advance the machine clock by the cost model's
// unit charges and bump the driver-style counters.
//
// The pager does not hold page contents — SecureLease components keep their
// own data and use the pager purely for residency accounting, exactly as
// the paper's evaluation does (it measures fault and eviction counts).
type epcPager struct {
	mu       sync.Mutex
	capacity int // resident slots (pages)
	resident int
	pages    map[PageID]*page
	lru      *list.List // front = least recently used; values are *page
	nextID   PageID

	clock *Clock
	model CostModel
	stats *Stats
}

func newEPCPager(capacityPages int, clock *Clock, model CostModel, stats *Stats) *epcPager {
	return &epcPager{
		capacity: capacityPages,
		pages:    make(map[PageID]*page, capacityPages),
		lru:      list.New(),
		clock:    clock,
		model:    model,
		stats:    stats,
	}
}

// alloc adds n fresh resident pages for the given enclave, evicting cold
// pages if the EPC is full. It returns the new page IDs.
func (p *epcPager) alloc(owner EnclaveID, n int) ([]PageID, error) {
	if n <= 0 {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	ids := make([]PageID, 0, n)
	for i := 0; i < n; i++ {
		if err := p.makeRoomLocked(); err != nil {
			return ids, err
		}
		p.nextID++
		pg := &page{id: p.nextID, owner: owner, state: pageResident}
		pg.lruElem = p.lru.PushBack(pg)
		p.pages[pg.id] = pg
		p.resident++
		p.clock.Advance(p.model.PageAdd)
		p.stats.pageAllocs.Add(1)
		ids = append(ids, pg.id)
	}
	return ids, nil
}

// touch records an access to the page. If the page was evicted, the access
// faults: the fault service cost and a load-back are charged and the page
// becomes resident again (possibly evicting another page). touch reports
// whether the access faulted.
func (p *epcPager) touch(id PageID) (faulted bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	pg, ok := p.pages[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", errUnknownPage, id)
	}
	switch pg.state {
	case pageResident:
		if pg.lruElem != nil {
			p.lru.MoveToBack(pg.lruElem)
		}
		return false, nil
	case pageEvicted:
		p.clock.Advance(p.model.EPCFault)
		p.stats.epcFaults.Add(1)
		if err := p.makeRoomLocked(); err != nil {
			return true, err
		}
		p.clock.Advance(p.model.PageLoad)
		p.stats.pageLoads.Add(1)
		pg.state = pageResident
		pg.lruElem = p.lru.PushBack(pg)
		p.resident++
		return true, nil
	default:
		return false, fmt.Errorf("sgx: page %d in invalid state %d", id, pg.state)
	}
}

// pin marks a page as unevictable (e.g. the lease-tree root node, the
// enclave's root of trust). Pinned pages never leave the EPC.
func (p *epcPager) pin(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg, ok := p.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", errUnknownPage, id)
	}
	if pg.state != pageResident {
		// Fault it in first, inline (cheaper than unlocking and retrying).
		p.clock.Advance(p.model.EPCFault)
		p.stats.epcFaults.Add(1)
		if err := p.makeRoomLocked(); err != nil {
			return err
		}
		p.clock.Advance(p.model.PageLoad)
		p.stats.pageLoads.Add(1)
		pg.state = pageResident
		p.resident++
	} else if pg.lruElem != nil {
		p.lru.Remove(pg.lruElem)
	}
	pg.pinned = true
	pg.lruElem = nil
	return nil
}

// unpin makes a pinned page evictable again.
func (p *epcPager) unpin(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg, ok := p.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", errUnknownPage, id)
	}
	if !pg.pinned {
		return nil
	}
	pg.pinned = false
	if pg.state == pageResident {
		pg.lruElem = p.lru.PushBack(pg)
	}
	return nil
}

// evict forces a specific resident page out of the EPC (used when a
// component explicitly commits-and-offloads state, per Section 5.5).
func (p *epcPager) evict(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg, ok := p.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", errUnknownPage, id)
	}
	if pg.state != pageResident {
		return nil
	}
	if pg.pinned {
		return fmt.Errorf("sgx: page %d is pinned and cannot be evicted", id)
	}
	p.evictLocked(pg)
	return nil
}

// free releases pages permanently (enclave teardown or explicit dealloc).
func (p *epcPager) free(ids []PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		pg, ok := p.pages[id]
		if !ok {
			continue
		}
		if pg.state == pageResident {
			if pg.lruElem != nil {
				p.lru.Remove(pg.lruElem)
			}
			p.resident--
		}
		delete(p.pages, id)
	}
}

// residentCount returns the number of pages currently in the EPC.
func (p *epcPager) residentCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident
}

// residentOf returns the number of resident pages owned by one enclave.
func (p *epcPager) residentOf(owner EnclaveID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, pg := range p.pages {
		if pg.owner == owner && pg.state == pageResident {
			n++
		}
	}
	return n
}

// makeRoomLocked evicts LRU pages until at least one slot is free.
func (p *epcPager) makeRoomLocked() error {
	for p.resident >= p.capacity {
		front := p.lru.Front()
		if front == nil {
			return ErrEPCExhausted
		}
		pg, ok := front.Value.(*page)
		if !ok {
			return errors.New("sgx: corrupt LRU list")
		}
		p.evictLocked(pg)
	}
	return nil
}

func (p *epcPager) evictLocked(pg *page) {
	if pg.lruElem != nil {
		p.lru.Remove(pg.lruElem)
		pg.lruElem = nil
	}
	pg.state = pageEvicted
	p.resident--
	p.clock.Advance(p.model.PageEvict)
	p.stats.pageEvicts.Add(1)
}
