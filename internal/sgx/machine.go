package sgx

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/seccrypto"
)

// MachineConfig configures a simulated SGX-capable machine.
type MachineConfig struct {
	// Name labels the machine in logs and attestation evidence.
	Name string
	// EPCBytes is the usable enclave page cache size. Defaults to the
	// paper's ~92 MB when zero.
	EPCBytes int64
	// Model is the cost model. Defaults to DefaultCostModel when zero.
	Model CostModel
}

// Machine is a simulated SGX-capable host: a shared EPC, a virtual cycle
// clock, driver-style statistics, and the enclaves currently running on it.
// One Machine corresponds to one client node in the paper's setting.
//
// Machine is safe for concurrent use.
type Machine struct {
	name  string
	clock Clock
	model CostModel
	pager *epcPager
	stats Stats

	mu       sync.Mutex
	nextID   EnclaveID
	enclaves map[EnclaveID]*Enclave
	platform seccrypto.Key // platform root key; derives enclave seal keys
}

// NewMachine builds a machine from the config. Zero-valued fields take the
// paper's defaults (92 MB EPC, DefaultCostModel).
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if cfg.EPCBytes == 0 {
		cfg.EPCBytes = DefaultEPC
	}
	if cfg.EPCBytes < PageSize {
		return nil, fmt.Errorf("sgx: EPC of %d bytes is smaller than one page", cfg.EPCBytes)
	}
	if cfg.Model == (CostModel{}) {
		cfg.Model = DefaultCostModel()
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	platform, err := seccrypto.NewKey(nil)
	if err != nil {
		return nil, fmt.Errorf("sgx: platform key: %w", err)
	}
	m := &Machine{
		name:     cfg.Name,
		model:    cfg.Model,
		enclaves: make(map[EnclaveID]*Enclave),
		platform: platform,
	}
	m.pager = newEPCPager(int(cfg.EPCBytes/PageSize), &m.clock, cfg.Model, &m.stats)
	return m, nil
}

// Name returns the machine's label.
func (m *Machine) Name() string { return m.name }

// Clock returns the machine's virtual cycle clock.
func (m *Machine) Clock() *Clock { return &m.clock }

// Model returns the cost model in effect.
func (m *Machine) Model() CostModel { return m.model }

// Stats returns a snapshot of the machine-wide SGX event counters.
func (m *Machine) Stats() StatsSnapshot { return m.stats.Snapshot() }

// EPCResidentPages returns the total number of pages currently resident in
// the EPC across all enclaves.
func (m *Machine) EPCResidentPages() int { return m.pager.residentCount() }

// EPCCapacityPages returns the EPC capacity in pages.
func (m *Machine) EPCCapacityPages() int { return m.pager.capacity }

// CreateEnclave launches an enclave named name whose identity is the
// measurement of codeIdentity (any stable byte description of the code,
// e.g. the binary's hash). The creation cost plus per-page add costs for
// initialPages are charged.
func (m *Machine) CreateEnclave(name string, codeIdentity []byte, initialPages int) (*Enclave, error) {
	if initialPages < 0 {
		return nil, fmt.Errorf("sgx: negative initial pages %d", initialPages)
	}
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()

	sealKey, err := m.deriveSealKey(codeIdentity)
	if err != nil {
		return nil, err
	}
	e := &Enclave{
		id:      id,
		name:    name,
		measure: sha256.Sum256(codeIdentity),
		machine: m,
		sealKey: sealKey,
	}
	m.clock.Advance(m.model.EnclaveCreate)
	if initialPages > 0 {
		if _, err := e.AllocPages(initialPages); err != nil {
			return nil, err
		}
	}

	m.mu.Lock()
	m.enclaves[id] = e
	m.mu.Unlock()
	return e, nil
}

// Enclave returns the live enclave with the given ID, or nil.
func (m *Machine) Enclave(id EnclaveID) *Enclave {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.enclaves[id]
}

// Enclaves returns the live enclaves, in unspecified order.
func (m *Machine) Enclaves() []*Enclave {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Enclave, 0, len(m.enclaves))
	for _, e := range m.enclaves {
		out = append(out, e)
	}
	return out
}

// ChargeLocalAttestation advances the clock by one local-attestation round
// trip and bumps the counter. The attestation protocol itself lives in
// internal/attest; the machine only does the accounting.
func (m *Machine) ChargeLocalAttestation() {
	m.clock.Advance(m.model.LocalAttest)
	m.stats.localAttests.Add(1)
}

// ChargeRemoteAttestation advances the clock by the remote-attestation
// latency (3-4 s in the paper) and bumps the counter.
func (m *Machine) ChargeRemoteAttestation() {
	m.clock.Advance(m.model.DurationToCycles(m.model.RemoteAttest))
	m.stats.remoteAttests.Add(1)
}

// ChargeCompute advances the clock by an application compute cost. It lets
// workload simulations account for their non-SGX execution time on the
// same timeline as the SGX events.
func (m *Machine) ChargeCompute(cycles int64) {
	m.clock.Advance(cycles)
}

// deriveSealKey derives an enclave-measurement-bound key from the platform
// root key, mimicking EGETKEY's seal-key derivation.
func (m *Machine) deriveSealKey(codeIdentity []byte) (seccrypto.Key, error) {
	h := sha256.New()
	h.Write(m.platform.Bytes())
	h.Write(codeIdentity)
	return seccrypto.KeyFromBytes(h.Sum(nil)[:seccrypto.KeySize])
}

func (m *Machine) removeEnclave(id EnclaveID) {
	m.mu.Lock()
	delete(m.enclaves, id)
	m.mu.Unlock()
}
