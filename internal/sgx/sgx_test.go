package sgx

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestMachine(t *testing.T, epcBytes int64) *Machine {
	t.Helper()
	m, err := NewMachine(MachineConfig{Name: "test", EPCBytes: epcBytes})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatalf("default cost model invalid: %v", err)
	}
}

func TestCostModelValidateRejectsBad(t *testing.T) {
	m := DefaultCostModel()
	m.CPUHz = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero CPUHz accepted")
	}
	m = DefaultCostModel()
	m.ECall = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative ECall accepted")
	}
	m = DefaultCostModel()
	m.RemoteAttest = -time.Second
	if err := m.Validate(); err == nil {
		t.Fatal("negative RemoteAttest accepted")
	}
}

func TestCyclesDurationRoundTrip(t *testing.T) {
	m := DefaultCostModel()
	d := m.CyclesToDuration(2_900_000_000)
	if d < 999*time.Millisecond || d > 1001*time.Millisecond {
		t.Fatalf("2.9e9 cycles at 2.9GHz should be ~1s, got %v", d)
	}
	c := m.DurationToCycles(time.Second)
	if c < 2_899_000_000 || c > 2_901_000_000 {
		t.Fatalf("1s at 2.9GHz should be ~2.9e9 cycles, got %d", c)
	}
	if m.CyclesToDuration(-5) != 0 {
		t.Fatal("negative cycles should convert to 0")
	}
	if m.DurationToCycles(-time.Second) != 0 {
		t.Fatal("negative duration should convert to 0")
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(3)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), int64(workers*perWorker*3); got != want {
		t.Fatalf("clock = %d, want %d", got, want)
	}
	c.Advance(-100)
	if got := c.Now(); got != int64(workers*perWorker*3) {
		t.Fatalf("negative advance changed the clock to %d", got)
	}
}

func TestMachineDefaults(t *testing.T) {
	m := newTestMachine(t, 0)
	if got, want := m.EPCCapacityPages(), DefaultEPC/PageSize; got != want {
		t.Fatalf("EPC capacity = %d pages, want %d", got, want)
	}
	if m.Model().ECall != 17000 {
		t.Fatalf("default ECall cost = %d, want 17000", m.Model().ECall)
	}
}

func TestMachineRejectsTinyEPC(t *testing.T) {
	if _, err := NewMachine(MachineConfig{EPCBytes: 100}); err == nil {
		t.Fatal("sub-page EPC accepted")
	}
}

func TestEnclaveCreateChargesClock(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	before := m.Clock().Now()
	if _, err := m.CreateEnclave("e", []byte("code"), 4); err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	charged := m.Clock().Since(before)
	want := m.Model().EnclaveCreate + 4*m.Model().PageAdd
	if charged != want {
		t.Fatalf("creation charged %d cycles, want %d", charged, want)
	}
}

func TestECallOCallAccounting(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	start := m.Clock().Now()
	ran := false
	if err := e.ECall(func() error { ran = true; return nil }); err != nil {
		t.Fatalf("ECall: %v", err)
	}
	if !ran {
		t.Fatal("ECall did not run the trusted function")
	}
	if err := e.OCall(nil); err != nil {
		t.Fatalf("OCall: %v", err)
	}
	if got, want := m.Clock().Since(start), m.Model().ECall+m.Model().OCall; got != want {
		t.Fatalf("transitions charged %d cycles, want %d", got, want)
	}
	s := m.Stats()
	if s.ECalls != 1 || s.OCalls != 1 {
		t.Fatalf("stats = %+v, want 1 ecall and 1 ocall", s)
	}
	es := e.Stats()
	if es.ECalls != 1 || es.OCalls != 1 {
		t.Fatalf("enclave stats = %+v, want 1 ecall and 1 ocall", es)
	}
}

func TestECallPropagatesError(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	sentinel := errors.New("trusted failure")
	if err := e.ECall(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("ECall error = %v, want sentinel", err)
	}
}

func TestEPCEvictionOnPressure(t *testing.T) {
	// EPC of 8 pages; allocating 12 must evict 4.
	m := newTestMachine(t, 8*PageSize)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	ids, err := e.AllocPages(12)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	if len(ids) != 12 {
		t.Fatalf("got %d pages, want 12", len(ids))
	}
	s := m.Stats()
	if s.PageEvicts != 4 {
		t.Fatalf("evictions = %d, want 4", s.PageEvicts)
	}
	if got := m.EPCResidentPages(); got != 8 {
		t.Fatalf("resident = %d, want 8", got)
	}
}

func TestTouchFaultsEvictedPage(t *testing.T) {
	m := newTestMachine(t, 4*PageSize)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	ids, err := e.AllocPages(6) // first two get evicted (LRU)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	faulted, err := e.Touch(ids[0])
	if err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if !faulted {
		t.Fatal("touching an evicted page did not fault")
	}
	faulted, err = e.Touch(ids[0])
	if err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if faulted {
		t.Fatal("second touch of a resident page faulted")
	}
	s := m.Stats()
	if s.EPCFaults != 1 {
		t.Fatalf("faults = %d, want 1", s.EPCFaults)
	}
	if s.PageLoads != 1 {
		t.Fatalf("loads = %d, want 1", s.PageLoads)
	}
}

func TestLRUOrderRespectsTouches(t *testing.T) {
	m := newTestMachine(t, 3*PageSize)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	ids, err := e.AllocPages(3)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	// Touch page 0 to make page 1 the LRU victim.
	if _, err := e.Touch(ids[0]); err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if _, err := e.AllocPages(1); err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	faulted, err := e.Touch(ids[1])
	if err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if !faulted {
		t.Fatal("expected page 1 to have been the eviction victim")
	}
	faulted, err = e.Touch(ids[0])
	if err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if faulted {
		// Page 0 was recently used, then page 2 was LRU when page 1 faulted
		// back in; page 0 may have been evicted at that point. Accept either
		// but verify the pager still works.
		if _, err := e.Touch(ids[0]); err != nil {
			t.Fatalf("re-touch: %v", err)
		}
	}
}

func TestPinPreventsEviction(t *testing.T) {
	m := newTestMachine(t, 2*PageSize)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	ids, err := e.AllocPages(2)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	if err := e.Pin(ids[0]); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if _, err := e.AllocPages(1); err != nil {
		t.Fatalf("AllocPages under pressure: %v", err)
	}
	// Pinned page must still be resident (touch must not fault).
	faulted, err := e.Touch(ids[0])
	if err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if faulted {
		t.Fatal("pinned page was evicted")
	}
	if err := e.Evict(ids[0]); err == nil {
		t.Fatal("explicit eviction of a pinned page succeeded")
	}
	if err := e.Unpin(ids[0]); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	if err := e.Evict(ids[0]); err != nil {
		t.Fatalf("Evict after Unpin: %v", err)
	}
}

func TestEPCExhaustedWhenAllPinned(t *testing.T) {
	m := newTestMachine(t, 2*PageSize)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	ids, err := e.AllocPages(2)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	for _, id := range ids {
		if err := e.Pin(id); err != nil {
			t.Fatalf("Pin: %v", err)
		}
	}
	if _, err := e.AllocPages(1); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("alloc with all pages pinned: got %v, want ErrEPCExhausted", err)
	}
}

func TestExplicitEvictAndFree(t *testing.T) {
	m := newTestMachine(t, 16*PageSize)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	ids, err := e.AllocPages(4)
	if err != nil {
		t.Fatalf("AllocPages: %v", err)
	}
	if err := e.Evict(ids[2]); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if got := e.ResidentPages(); got != 3 {
		t.Fatalf("resident after evict = %d, want 3", got)
	}
	// Evicting an already-evicted page is a no-op.
	if err := e.Evict(ids[2]); err != nil {
		t.Fatalf("double Evict: %v", err)
	}
	e.FreePages(ids)
	if got := e.ResidentPages(); got != 0 {
		t.Fatalf("resident after free = %d, want 0", got)
	}
	if _, err := e.Touch(ids[0]); err == nil {
		t.Fatal("touching a freed page succeeded")
	}
}

func TestAllocBytesRoundsUp(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	ids, err := e.AllocBytes(PageSize + 1)
	if err != nil {
		t.Fatalf("AllocBytes: %v", err)
	}
	if len(ids) != 2 {
		t.Fatalf("AllocBytes(4097) = %d pages, want 2", len(ids))
	}
	ids, err = e.AllocBytes(0)
	if err != nil || ids != nil {
		t.Fatalf("AllocBytes(0) = %v, %v; want nil, nil", ids, err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("e", []byte("codeA"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	data := []byte("lease tree root node contents")
	blob, err := e.Seal(data)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := e.Unseal(blob)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("seal round trip mismatch")
	}

	// A same-code enclave on the same machine can unseal.
	e2, err := m.CreateEnclave("e2", []byte("codeA"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	if _, err := e2.Unseal(blob); err != nil {
		t.Fatalf("same-measurement Unseal: %v", err)
	}

	// A different-code enclave cannot.
	e3, err := m.CreateEnclave("e3", []byte("codeB"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	if _, err := e3.Unseal(blob); err == nil {
		t.Fatal("different measurement unsealed the blob")
	}
}

func TestSealDoesNotCrossMachines(t *testing.T) {
	m1 := newTestMachine(t, 1<<20)
	m2 := newTestMachine(t, 1<<20)
	e1, err := m1.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	e2, err := m2.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	blob, err := e1.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := e2.Unseal(blob); err == nil {
		t.Fatal("seal key leaked across machines")
	}
}

func TestDestroyedEnclaveRejectsOps(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("e", []byte("code"), 2)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	e.Destroy()
	e.Destroy() // idempotent
	if err := e.ECall(nil); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("ECall after destroy: %v", err)
	}
	if _, err := e.AllocPages(1); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("AllocPages after destroy: %v", err)
	}
	if _, err := e.Seal(nil); !errors.Is(err, ErrEnclaveDestroyed) {
		t.Fatalf("Seal after destroy: %v", err)
	}
	if m.Enclave(e.ID()) != nil {
		t.Fatal("destroyed enclave still registered on machine")
	}
}

func TestDestroyReleasesEPC(t *testing.T) {
	m := newTestMachine(t, 4*PageSize)
	e, err := m.CreateEnclave("e", []byte("code"), 4)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	if got := m.EPCResidentPages(); got != 4 {
		t.Fatalf("resident = %d, want 4", got)
	}
	e.Destroy()
	if got := m.EPCResidentPages(); got != 0 {
		t.Fatalf("resident after destroy = %d, want 0", got)
	}
	// The freed EPC is reusable.
	e2, err := m.CreateEnclave("e2", []byte("code"), 4)
	if err != nil {
		t.Fatalf("CreateEnclave after destroy: %v", err)
	}
	if got := e2.ResidentPages(); got != 4 {
		t.Fatalf("new enclave resident = %d, want 4", got)
	}
}

func TestAttestationCharges(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	start := m.Clock().Now()
	m.ChargeLocalAttestation()
	la := m.Clock().Since(start)
	if la != m.Model().LocalAttest {
		t.Fatalf("local attestation charged %d, want %d", la, m.Model().LocalAttest)
	}
	start = m.Clock().Now()
	m.ChargeRemoteAttestation()
	ra := m.Clock().Elapsed(start, m.Model())
	if ra < 3*time.Second || ra > 4*time.Second {
		t.Fatalf("remote attestation charged %v, want 3-4s", ra)
	}
	s := m.Stats()
	if s.LocalAttests != 1 || s.RemoteAttests != 1 {
		t.Fatalf("attestation counters = %+v", s)
	}
}

func TestStatsSnapshotSub(t *testing.T) {
	m := newTestMachine(t, 1<<20)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	before := m.Stats()
	for i := 0; i < 5; i++ {
		if err := e.ECall(nil); err != nil {
			t.Fatalf("ECall: %v", err)
		}
	}
	delta := m.Stats().Sub(before)
	if delta.ECalls != 5 {
		t.Fatalf("delta ecalls = %d, want 5", delta.ECalls)
	}
	if got := delta.String(); got == "" {
		t.Fatal("empty stats string")
	}
}

func TestConcurrentEnclaveUse(t *testing.T) {
	m := newTestMachine(t, 64*PageSize)
	e, err := m.CreateEnclave("e", []byte("code"), 0)
	if err != nil {
		t.Fatalf("CreateEnclave: %v", err)
	}
	var wg sync.WaitGroup
	const workers = 8
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids, err := e.AllocPages(4)
			if err != nil {
				errs[w] = err
				return
			}
			for i := 0; i < 50; i++ {
				if _, err := e.Touch(ids[i%len(ids)]); err != nil {
					errs[w] = err
					return
				}
				if err := e.ECall(nil); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	s := m.Stats()
	if s.ECalls != workers*50 {
		t.Fatalf("ecalls = %d, want %d", s.ECalls, workers*50)
	}
	if s.PageAllocs != workers*4 {
		t.Fatalf("page allocs = %d, want %d", s.PageAllocs, workers*4)
	}
}

func TestPagerInvariantProperty(t *testing.T) {
	// Property: after any sequence of alloc/touch/evict operations, the
	// number of resident pages never exceeds capacity.
	f := func(ops []uint8) bool {
		m, err := NewMachine(MachineConfig{EPCBytes: 6 * PageSize})
		if err != nil {
			return false
		}
		e, err := m.CreateEnclave("p", []byte("c"), 0)
		if err != nil {
			return false
		}
		var ids []PageID
		for _, op := range ops {
			switch op % 3 {
			case 0:
				got, err := e.AllocPages(1)
				if err != nil {
					return false
				}
				ids = append(ids, got...)
			case 1:
				if len(ids) > 0 {
					if _, err := e.Touch(ids[int(op)%len(ids)]); err != nil {
						return false
					}
				}
			case 2:
				if len(ids) > 0 {
					if err := e.Evict(ids[int(op)%len(ids)]); err != nil {
						return false
					}
				}
			}
			if m.EPCResidentPages() > m.EPCCapacityPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkECall(b *testing.B) {
	m, err := NewMachine(MachineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := m.CreateEnclave("bench", []byte("code"), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.ECall(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTouchResident(b *testing.B) {
	m, err := NewMachine(MachineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := m.CreateEnclave("bench", []byte("code"), 0)
	if err != nil {
		b.Fatal(err)
	}
	ids, err := e.AllocPages(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Touch(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}
