// Package sgx simulates the Intel SGX execution environment that SecureLease
// targets: a processor-reserved memory region with a limited enclave page
// cache (EPC), enclaves with cycle-charged ECALL/OCALL transitions,
// transparent EPC paging with per-fault costs, sealing, and the statistics
// counters the paper collects from a modified SGX driver (page evictions,
// allocations, and load-backs).
//
// The simulator charges all costs in cycles on a deterministic virtual
// clock. Unit costs default to the published figures the paper cites:
// roughly 17,000 cycles per ECALL (Weisse et al., HotCalls) and up to
// 12,000 cycles to service an EPC fault. Because the paper's performance
// results are driven by counts of these events times their unit costs,
// reproducing the counts and costs reproduces the shape of the results.
package sgx

import (
	"fmt"
	"time"
)

// Size constants for the simulated SGX memory layout (Section 2.3 of the
// paper: 128 MB PRM of which ~92 MB is usable EPC; 4 KB pages).
const (
	PageSize       = 4096
	DefaultPRM     = 128 << 20
	DefaultEPC     = 92 << 20
	DefaultEPCSize = DefaultEPC / PageSize // pages
)

// CostModel holds the unit costs, in cycles, of every chargeable SGX event,
// plus the clock frequency used to convert cycles to wall time. The zero
// value is not useful; start from DefaultCostModel.
type CostModel struct {
	// CPUHz is the simulated core frequency (Table 3: 2.9 GHz).
	CPUHz float64

	// ECall is the cost of entering an enclave (EENTER + argument
	// marshalling). Weisse et al. report ~17,000 cycles.
	ECall int64

	// OCall is the cost of an enclave exiting to call untrusted code
	// (EEXIT + resume).
	OCall int64

	// EPCFault is the cost of servicing a page fault on an evicted EPC
	// page, excluding the load-back itself (up to 12,000 cycles).
	EPCFault int64

	// PageEvict is the cost of evicting one EPC page to untrusted memory
	// (EWB: encrypt, version, write out).
	PageEvict int64

	// PageLoad is the cost of loading one evicted page back into the EPC
	// (ELDU: read, decrypt, verify).
	PageLoad int64

	// PageAdd is the cost of adding a fresh zero EPC page (EAUG/EACCEPT).
	PageAdd int64

	// EnclaveCreate is the fixed cost of ECREATE + measurement (EADD/
	// EEXTEND) per enclave, excluding per-page costs.
	EnclaveCreate int64

	// LocalAttest is the cost of one local attestation round trip
	// (EREPORT + MAC verification on both sides).
	LocalAttest int64

	// RemoteAttest is the wall-clock latency of one remote attestation,
	// dominated by the round trips to the attestation service. The paper
	// measures 3-4 seconds per RA call.
	RemoteAttest time.Duration

	// SealCycles is the per-page cost of sealing/unsealing data with the
	// enclave sealing key.
	SealCycles int64
}

// DefaultCostModel returns the cost model used throughout the paper's
// evaluation (Table 3 hardware, published transition costs).
func DefaultCostModel() CostModel {
	return CostModel{
		CPUHz:         2.9e9,
		ECall:         17000,
		OCall:         8000,
		EPCFault:      12000,
		PageEvict:     7000,
		PageLoad:      7000,
		PageAdd:       1500,
		EnclaveCreate: 2_000_000,
		LocalAttest:   250_000,
		RemoteAttest:  3500 * time.Millisecond,
		SealCycles:    4000,
	}
}

// Validate reports whether the cost model is internally consistent.
func (c CostModel) Validate() error {
	if c.CPUHz <= 0 {
		return fmt.Errorf("sgx: cost model CPUHz must be positive, got %v", c.CPUHz)
	}
	for _, v := range []struct {
		name string
		val  int64
	}{
		{"ECall", c.ECall},
		{"OCall", c.OCall},
		{"EPCFault", c.EPCFault},
		{"PageEvict", c.PageEvict},
		{"PageLoad", c.PageLoad},
		{"PageAdd", c.PageAdd},
		{"EnclaveCreate", c.EnclaveCreate},
		{"LocalAttest", c.LocalAttest},
		{"SealCycles", c.SealCycles},
	} {
		if v.val < 0 {
			return fmt.Errorf("sgx: cost model %s must be non-negative, got %d", v.name, v.val)
		}
	}
	if c.RemoteAttest < 0 {
		return fmt.Errorf("sgx: cost model RemoteAttest must be non-negative, got %v", c.RemoteAttest)
	}
	return nil
}

// CyclesToDuration converts a cycle count to wall time at the model's
// clock frequency.
func (c CostModel) CyclesToDuration(cycles int64) time.Duration {
	if cycles <= 0 {
		return 0
	}
	sec := float64(cycles) / c.CPUHz
	return time.Duration(sec * float64(time.Second))
}

// DurationToCycles converts wall time to cycles at the model's clock
// frequency.
func (c CostModel) DurationToCycles(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64(d.Seconds() * c.CPUHz)
}
