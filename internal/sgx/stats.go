package sgx

import (
	"fmt"
	"sync/atomic"
)

// Stats mirrors the counters the paper collects from its modified SGX
// driver (Section 7.1): EPC page evictions, allocations, and load-backs,
// plus the enclave transition counts that drive the cost model.
//
// Stats is safe for concurrent use; read a consistent copy with Snapshot.
type Stats struct {
	ecalls        atomic.Int64
	ocalls        atomic.Int64
	epcFaults     atomic.Int64
	pageAllocs    atomic.Int64
	pageEvicts    atomic.Int64
	pageLoads     atomic.Int64
	localAttests  atomic.Int64
	remoteAttests atomic.Int64
	sealOps       atomic.Int64
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	ECalls        int64
	OCalls        int64
	EPCFaults     int64
	PageAllocs    int64
	PageEvicts    int64
	PageLoads     int64
	LocalAttests  int64
	RemoteAttests int64
	SealOps       int64
}

// Snapshot returns a consistent-enough copy of all counters. Individual
// counters are loaded atomically; cross-counter skew is bounded by whatever
// activity is concurrently in flight, which is acceptable for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		ECalls:        s.ecalls.Load(),
		OCalls:        s.ocalls.Load(),
		EPCFaults:     s.epcFaults.Load(),
		PageAllocs:    s.pageAllocs.Load(),
		PageEvicts:    s.pageEvicts.Load(),
		PageLoads:     s.pageLoads.Load(),
		LocalAttests:  s.localAttests.Load(),
		RemoteAttests: s.remoteAttests.Load(),
		SealOps:       s.sealOps.Load(),
	}
}

// Sub returns the per-field difference s - o, for measuring an interval.
func (s StatsSnapshot) Sub(o StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		ECalls:        s.ECalls - o.ECalls,
		OCalls:        s.OCalls - o.OCalls,
		EPCFaults:     s.EPCFaults - o.EPCFaults,
		PageAllocs:    s.PageAllocs - o.PageAllocs,
		PageEvicts:    s.PageEvicts - o.PageEvicts,
		PageLoads:     s.PageLoads - o.PageLoads,
		LocalAttests:  s.LocalAttests - o.LocalAttests,
		RemoteAttests: s.RemoteAttests - o.RemoteAttests,
		SealOps:       s.SealOps - o.SealOps,
	}
}

// String renders the snapshot compactly for logs and experiment output.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"ecalls=%d ocalls=%d epc_faults=%d page_allocs=%d page_evicts=%d page_loads=%d la=%d ra=%d seals=%d",
		s.ECalls, s.OCalls, s.EPCFaults, s.PageAllocs, s.PageEvicts, s.PageLoads,
		s.LocalAttests, s.RemoteAttests, s.SealOps)
}
