// Root benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Section 7). Each benchmark runs the
// corresponding harness driver end to end, so
//
//	go test -bench=. -benchmem
//
// regenerates every experiment and times the full pipeline. For the
// human-readable tables themselves, run `go run ./cmd/slbench -exp all`.
package repro

import (
	"testing"
	"time"

	"repro/internal/harness"
)

// BenchmarkTable1LeaseLookup regenerates Table 1: find() latency of the
// lease tree vs MurmurHash and SHA-256 hash tables at 10/100/1000/5000
// lease operations.
func BenchmarkTable1LeaseLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Timing noise on a loaded machine can flip a single run; the
		// shape must hold within a few attempts (the unit test asserts it
		// strictly with more repeats).
		ok := false
		for attempt := 0; attempt < 3 && !ok; attempt++ {
			res, err := harness.Table1(3)
			if err != nil {
				b.Fatal(err)
			}
			ok = res.TreeFasterThanHashes()
		}
		if !ok {
			b.Fatal("tree lost to a hash table in 3 attempts — Table 1 shape broken")
		}
	}
}

// BenchmarkTable5Partitioning regenerates Table 5: the partitioning
// comparison (static/dynamic coverage, EPC behaviour, improvement) across
// all eleven workloads.
func BenchmarkTable5Partitioning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := harness.Table5(1, 7)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 11 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkTable6Memory regenerates Table 6: SL-Local memory with and
// without eviction at 1K-50K leases.
func BenchmarkTable6Memory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := harness.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if !res.EvictionFlattens() {
			b.Fatal("eviction did not flatten the footprint")
		}
	}
}

// BenchmarkFigure7Clustering regenerates Figure 7: the OpenSSL call-graph
// clustering and migration visual for both schemes.
func BenchmarkFigure7Clustering(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := harness.Figure7("openssl", 1, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Attestation regenerates Figure 8: concurrent
// lease-allocation throughput with and without token batching.
func BenchmarkFigure8Attestation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure8(50 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if res.BatchingSpeedup() < 2 {
			b.Fatalf("batching speedup %.1f×", res.BatchingSpeedup())
		}
	}
}

// BenchmarkFigure9EndToEnd regenerates Figure 9: end-to-end overhead of
// F-LaaS vs Glamdring vs SecureLease across all workloads, including the
// real SL-Remote → SL-Local → SL-Manager lease path.
func BenchmarkFigure9EndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure9(1, 7)
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanImprovementOverFLaaS <= 0 {
			b.Fatal("no improvement over F-LaaS")
		}
	}
}
